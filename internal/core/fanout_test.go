package core

import (
	"context"

	"reflect"
	"runtime"
	"testing"
)

// The fan-out grid's contract is byte-identity: every cell of the
// generate-once engine must deep-equal what sequential RunOne (and the
// per-cell engine) produce, at every parallelism level, because each model
// still replays the exact same access sequence.

func equivalenceConfig() Config {
	cfg := Default()
	cfg.TraceLength = 20_000 // full roster × benches; keep the test quick
	return cfg
}

func TestGridFanoutMatchesRunOne(t *testing.T) {
	cfg := equivalenceConfig()
	schemes := SchemeNames("")
	benches := []string{"fft", "sha", "dijkstra"}

	want := make(map[string]map[string]Result, len(benches))
	for _, b := range benches {
		row := make(map[string]Result, len(schemes))
		for _, s := range schemes {
			res, err := RunOne(context.Background(), cfg, s, b)
			if err != nil {
				t.Fatalf("RunOne(%s, %s): %v", s, b, err)
			}
			row[s] = res
		}
		want[b] = row
	}

	for _, par := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := cfg
		cfg.Parallelism = par
		got, err := Grid(context.Background(), cfg, schemes, benches)
		if err != nil {
			t.Fatalf("Grid(parallelism=%d): %v", par, err)
		}
		for _, b := range benches {
			for _, s := range schemes {
				g, w := got[b][s], want[b][s]
				if !reflect.DeepEqual(g, w) {
					t.Errorf("parallelism=%d: grid[%s][%s] diverges from RunOne\n got: %+v\nwant: %+v",
						par, b, s, g, w)
				}
			}
		}
	}
}

func TestGridFanoutMatchesPerCell(t *testing.T) {
	cfg := equivalenceConfig()
	schemes := SchemeNames("")
	benches := []string{"qsort", "mcf"}

	percell, err := GridPerCell(context.Background(), cfg, schemes, benches)
	if err != nil {
		t.Fatalf("GridPerCell: %v", err)
	}
	fanout, err := Grid(context.Background(), cfg, schemes, benches)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if !reflect.DeepEqual(fanout, percell) {
		t.Fatalf("fan-out grid diverges from per-cell grid")
	}

	// Config.PerCell must route Grid to the per-cell engine.
	cfg.PerCell = true
	routed, err := Grid(context.Background(), cfg, schemes, benches)
	if err != nil {
		t.Fatalf("Grid(PerCell): %v", err)
	}
	if !reflect.DeepEqual(routed, percell) {
		t.Fatalf("Grid with PerCell=true diverges from GridPerCell")
	}
}

func TestGridFanoutUnknownNames(t *testing.T) {
	cfg := equivalenceConfig()
	if _, err := Grid(context.Background(), cfg, []string{"baseline"}, []string{"no_such_bench"}); err == nil {
		t.Error("Grid accepted an unknown benchmark")
	}
	if _, err := Grid(context.Background(), cfg, []string{"no_such_scheme"}, []string{"fft"}); err == nil {
		t.Error("Grid accepted an unknown scheme")
	}
}

// TestSchemesReturnsCopies guards the roster-once satellite: mutating the
// returned slice must not leak into later calls.
func TestSchemesReturnsCopies(t *testing.T) {
	a := Schemes()
	name := a[0].Name
	a[0] = Scheme{Name: "corrupted"}
	b := Schemes()
	if b[0].Name != name {
		t.Fatalf("Schemes()[0].Name = %q after caller mutation, want %q", b[0].Name, name)
	}
	s, err := SchemeByName(name)
	if err != nil || s.Name != name {
		t.Fatalf("SchemeByName(%q) = (%+v, %v)", name, s, err)
	}
}

func TestSchemeByNameUnknown(t *testing.T) {
	if _, err := SchemeByName("definitely_not_a_scheme"); err == nil {
		t.Error("SchemeByName accepted an unknown name")
	}
}

package rng

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s.  Cache studies use Zipfian object popularity to model the
// hot-set concentration responsible for non-uniform set accesses, so the
// workload generators lean on this heavily.
//
// The implementation precomputes the CDF and samples by binary search:
// O(n) setup, O(log n) per draw, exact distribution.  n is bounded by
// available memory; workloads use n ≤ a few hundred thousand.
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s ≥ 0.
// s = 0 degenerates to the uniform distribution.  Panics if n <= 0, s < 0,
// or src is nil.
//
//lint:allow nopanic every call site passes compile-time-constant parameters from inside generator pumps, which have no error channel; an error return would be re-panicked there anyway.
func NewZipf(src *Source, s float64, n int) *Zipf {
	if src == nil {
		panic("rng: NewZipf with nil source")
	}
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s < 0 || math.IsNaN(s) {
		panic("rng: NewZipf with negative or NaN exponent")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	inv := 1 / total
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against round-off
	return &Zipf{src: src, cdf: cdf}
}

// N returns the size of the sampled domain.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws the next Zipf-distributed value in [0, N()).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

package rng

import (
	"sort"
	"testing"
)

func TestZipfRange(t *testing.T) {
	z := NewZipf(New(1), 1.0, 100)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Next = %d out of range", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With s=1.2, rank 0 should dominate; the top 10% of ranks should
	// collect well over half the draws.
	z := NewZipf(New(2), 1.2, 1000)
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Errorf("counts not decreasing with rank: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if float64(top)/draws < 0.5 {
		t.Errorf("top-10%% of ranks collected only %.1f%% of draws", 100*float64(top)/draws)
	}
}

func TestZipfZeroExponentUniform(t *testing.T) {
	z := NewZipf(New(3), 0, 64)
	counts := make([]int, 64)
	const draws = 128000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	sort.Ints(counts)
	// min and max bucket should be within a factor of 1.5 for uniform.
	if float64(counts[63])/float64(counts[0]) > 1.5 {
		t.Errorf("s=0 not uniform: min=%d max=%d", counts[0], counts[63])
	}
}

func TestZipfSingleton(t *testing.T) {
	z := NewZipf(New(4), 2.0, 1)
	for i := 0; i < 100; i++ {
		if z.Next() != 0 {
			t.Fatal("singleton Zipf returned nonzero")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil source": func() { NewZipf(nil, 1, 10) },
		"n=0":        func() { NewZipf(New(1), 1, 0) },
		"negative s": func() { NewZipf(New(1), -1, 10) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		})
	}
}

func TestZipfDeterminism(t *testing.T) {
	z1 := NewZipf(New(9), 0.8, 256)
	z2 := NewZipf(New(9), 0.8, 256)
	for i := 0; i < 1000; i++ {
		if z1.Next() != z2.Next() {
			t.Fatalf("Zipf streams diverged at draw %d", i)
		}
	}
}

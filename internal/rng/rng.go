// Package rng provides small, fast, fully deterministic random number
// generators for workload synthesis.
//
// The simulator must produce byte-identical traces for a given seed across
// platforms and Go releases, so we implement the generators ourselves
// (SplitMix64 for seeding, xoshiro256** for the main stream) instead of
// depending on math/rand's unspecified evolution.  None of the generators
// hold global state; each experiment owns its own *Source.
package rng

import "math"

// Source is a deterministic pseudo-random source (xoshiro256** seeded via
// SplitMix64).  It is not safe for concurrent use; give each goroutine its
// own Source (see Split).
type Source struct {
	s         [4]uint64
	spare     float64 // cached Box–Muller variate
	haveSpare bool
}

// New returns a Source seeded from the given seed.  Different seeds yield
// independent-looking streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	// xoshiro must not start in the all-zero state.
	if src.s == [4]uint64{} {
		src.s[0] = 0x9E3779B97F4A7C15
	}
	return &src
}

// splitMix64 advances a SplitMix64 state and returns (newState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split derives a new independent Source from this one, advancing this
// source by one draw.  Use it to hand child generators to worker goroutines
// while keeping the parent stream reproducible.
func (s *Source) Split() *Source { return New(s.Uint64()) }

// Intn returns a uniform int in [0, n).  It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method (no modulo bias).
func (s *Source) boundedUint64(n uint64) uint64 {
	for {
		v := s.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := ah*bl + (al*bl)>>32
	lo = a * b
	hi = ah*bh + t>>32 + (al*bh+t&mask)>>32
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// NormFloat64 returns a standard normal variate (Box–Muller; one value per
// call, the spare is cached).
func (s *Source) NormFloat64() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	var u, v, q float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		q = u*u + v*v
		if q > 0 && q < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(q) / q)
	s.spare, s.haveSpare = v*f, true
	return u * f
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements via the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

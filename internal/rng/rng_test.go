package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("seed 0 produced a stuck stream")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square against uniform over 16 buckets; generous threshold.
	s := New(99)
	const buckets, draws = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 dof, p=0.001 critical value is 37.7.
	if chi2 > 37.7 {
		t.Errorf("chi-square = %.2f, distribution badly non-uniform", chi2)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(8)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Errorf("Shuffle changed element multiset: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(123)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from split children", same)
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(77)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	ratio := float64(trues) / n
	if ratio < 0.48 || ratio > 0.52 {
		t.Errorf("Bool true ratio = %v", ratio)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

package dynamic

import (
	"testing"

	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/workload"
)

func TestTemperatureConfigValidation(t *testing.T) {
	l := testLayout(t)
	if _, err := NewTemperatureCache(l, TemperatureConfig{ShelterEntries: -1}); err == nil {
		t.Error("negative shelter capacity accepted")
	}
	if _, err := NewTemperatureCache(l, TemperatureConfig{ShelterEntries: l.Sets() + 1}); err == nil {
		t.Error("oversized shelter capacity accepted")
	}
	tc, err := NewTemperatureCache(l, TemperatureConfig{})
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if tc.Sets() != l.Sets() {
		t.Fatalf("Sets() = %d, want %d", tc.Sets(), l.Sets())
	}
}

func TestTemperatureClassifiesQuartiles(t *testing.T) {
	l := testLayout(t)
	tc, err := NewTemperatureCache(l, TemperatureConfig{Epoch: 4096})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.NewZipfSpec("z", workload.ZipfConfig{Blocks: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.RunBatched(tc, spec.Stream(11, 50_000), nil); err != nil {
		t.Fatal(err)
	}
	if got, want := tc.Classifications(), uint64(50_000/4096); got != want {
		t.Fatalf("classifications = %d, want %d", got, want)
	}
	var counts [4]int
	for s := 0; s < tc.Sets(); s++ {
		counts[tc.ClassOf(s)]++
	}
	q := tc.Sets() / 4
	if counts[VeryHot] != q || counts[Hot] != q || counts[VeryCold] != q {
		t.Fatalf("quartiles = %v, want %d per extreme class", counts, q)
	}
}

// TestTemperatureFlattensMissVariance is the ISSUE's temperature
// acceptance test: on a skewed Zipf workload the steered cache's per-set
// miss-count variance must be measurably below a baseline direct-mapped
// cache with the same modulo indexing — deterministically, fixed seed.
func TestTemperatureFlattensMissVariance(t *testing.T) {
	l := testLayout(t)
	spec, err := workload.NewZipfSpec("skewed", workload.ZipfConfig{Blocks: 4 * l.Sets(), Skew: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	const seed, n = 20110913, 300_000

	base, err := cache.New(cache.Config{Layout: l, Ways: 1, WriteAllocate: true})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewTemperatureCache(l, TemperatureConfig{Epoch: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.RunBatched(base, spec.Stream(seed, n), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.RunBatched(tc, spec.Stream(seed, n), nil); err != nil {
		t.Fatal(err)
	}

	variance := func(miss []uint64) float64 {
		mean := 0.0
		for _, m := range miss {
			mean += float64(m)
		}
		mean /= float64(len(miss))
		v := 0.0
		for _, m := range miss {
			d := float64(m) - mean
			v += d * d
		}
		return v / float64(len(miss))
	}
	vb := variance(base.PerSet().Misses)
	vt := variance(tc.PerSet().Misses)
	if tc.Steered() == 0 {
		t.Fatal("no victims were steered")
	}
	if vt >= 0.8*vb {
		t.Fatalf("miss variance not measurably flattened: temperature %.1f vs baseline %.1f", vt, vb)
	}
	if tc.Counters().Misses >= base.Counters().Misses {
		t.Fatalf("steering raised misses: %d vs baseline %d", tc.Counters().Misses, base.Counters().Misses)
	}
}

func TestTemperatureShelterHitsAndDeterminism(t *testing.T) {
	l := testLayout(t)
	spec, err := workload.NewZipfSpec("skewed", workload.ZipfConfig{Blocks: 4 * l.Sets(), Skew: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	run := func() *TemperatureCache {
		tc, err := NewTemperatureCache(l, TemperatureConfig{Epoch: 2048})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cache.RunBatched(tc, spec.Stream(42, 200_000), nil); err != nil {
			t.Fatal(err)
		}
		return tc
	}
	t1, t2 := run(), run()
	if t1.Counters() != t2.Counters() {
		t.Fatalf("identical runs diverged: %+v vs %+v", t1.Counters(), t2.Counters())
	}
	if t1.Steered() != t2.Steered() || t1.Classifications() != t2.Classifications() {
		t.Fatalf("steering history diverged: %d/%d vs %d/%d", t1.Steered(), t1.Classifications(), t2.Steered(), t2.Classifications())
	}
	ctr := t1.Counters()
	if ctr.SecondaryHits == 0 {
		t.Fatal("no shelter hits recorded")
	}
	if ctr.Hits+ctr.Misses != ctr.Accesses {
		t.Fatalf("counters inconsistent: %+v", ctr)
	}
	ps := t1.PerSet()
	var hits, misses, accesses uint64
	for s := range ps.Accesses {
		hits += ps.Hits[s]
		misses += ps.Misses[s]
		accesses += ps.Accesses[s]
	}
	if hits != ctr.Hits || misses != ctr.Misses || accesses != ctr.Accesses {
		t.Fatalf("per-set totals disagree with counters: %d/%d/%d vs %+v", hits, misses, accesses, ctr)
	}
	t1.Reset()
	if t1.Counters() != (cache.Counters{}) || t1.Steered() != 0 {
		t.Fatal("Reset left state behind")
	}
}

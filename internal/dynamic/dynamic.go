// Package dynamic implements the two runtime-adaptive cache families the
// roadmap grounds in the retrieved repositories:
//
//   - RepartitionCache follows Graphite's OCache::evolveNaive: a cache
//     shared by several reference classes (hardware threads, or the
//     instruction/data split) is divided into per-class partitions, and at
//     a configurable miss-count interval the partition suffering more
//     misses steals capacity from the one suffering fewer — dynamic way
//     reallocation recast over a direct-mapped cache's set space.
//
//   - TemperatureCache follows the ChampSim conflict-miss work: sets are
//     classified each epoch into Very-Hot / Hot / Cold / Very-Cold by
//     access count, and a block displaced from a Very-Hot set is steered
//     into a Very-Cold set (tracked through a shelter directory) instead
//     of being evicted, flattening the per-set miss distribution.
//
// Unlike the static organisations in internal/cache and internal/assoc,
// both models change their placement function while a workload runs; the
// paper's uniformity metrics then measure whether runtime adaptation buys
// flatter access/miss distributions than any fixed indexing could.  Both
// models are deterministic: identical streams produce identical counters,
// partition histories and classifications.
package dynamic

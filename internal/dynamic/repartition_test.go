package dynamic

import (
	"context"
	"reflect"
	"testing"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/trace"
	"cacheuniformity/internal/workload"
)

func testLayout(t *testing.T) addr.Layout {
	t.Helper()
	l, err := addr.NewLayout(32, 1024, 32)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	return l
}

func TestRepartitionConfigValidation(t *testing.T) {
	l := testLayout(t)
	cases := []struct {
		name string
		cfg  RepartitionConfig
	}{
		{"bad key", RepartitionConfig{By: "frequency"}},
		{"access with 3 partitions", RepartitionConfig{By: ByAccess, Partitions: 3}},
		{"too many partitions", RepartitionConfig{Partitions: 17}},
		{"one partition", RepartitionConfig{Partitions: 1}},
		{"granules below partitions", RepartitionConfig{Partitions: 4, Granules: 2}},
		{"granules not divisible", RepartitionConfig{Partitions: 3, Granules: 16}},
		{"granules not dividing sets", RepartitionConfig{Granules: 6}},
	}
	for _, tc := range cases {
		if _, err := NewRepartitionCache(l, tc.cfg); err == nil {
			t.Errorf("%s: expected error, got none", tc.name)
		}
	}
	r, err := NewRepartitionCache(l, RepartitionConfig{})
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if got := r.PartitionSets(); !reflect.DeepEqual(got, []int{512, 512}) {
		t.Fatalf("initial split = %v, want [512 512]", got)
	}
}

func TestRepartitionDisjointAndInBounds(t *testing.T) {
	l := testLayout(t)
	r, err := NewRepartitionCache(l, RepartitionConfig{Partitions: 4, Granules: 16, Interval: 64})
	if err != nil {
		t.Fatal(err)
	}
	sets := l.Sets()
	seen := make([]int, sets) // 1+partition of the owner, 0 = unowned
	for th := 0; th < 4; th++ {
		for b := 0; b < 4*sets; b++ {
			a := trace.Access{Addr: l.BlockAddr(uint64(b)), Thread: uint8(th)}
			s := r.SetFor(a)
			if s < 0 || s >= sets {
				t.Fatalf("SetFor out of range: %d", s)
			}
			if seen[s] != 0 && seen[s] != th+1 {
				t.Fatalf("set %d reachable from partitions %d and %d", s, seen[s]-1, th)
			}
			seen[s] = th + 1
		}
	}
	total := 0
	for _, n := range r.PartitionSets() {
		total += n
	}
	if total != sets {
		t.Fatalf("partitions cover %d sets, want %d", total, sets)
	}
}

// TestRepartitionConvergence is the ISSUE's adaptive acceptance test: two
// interleaved threads, one with a footprint far beyond its half of the
// cache and one far under, must trade capacity toward the heavy thread
// within the configured interval budget — deterministically.
func TestRepartitionConvergence(t *testing.T) {
	l := testLayout(t)
	const interval = 2048
	r, err := NewRepartitionCache(l, RepartitionConfig{Partitions: 2, Granules: 16, Interval: interval})
	if err != nil {
		t.Fatal(err)
	}

	heavy, err := workload.NewZipfSpec("heavy", workload.ZipfConfig{Blocks: 1 << 15, Skew: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	light, err := workload.NewZipfSpec("light", workload.ZipfConfig{Blocks: 64, Skew: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := workload.NewInterleaveSpec("mix", []workload.Spec{heavy, light})
	if err != nil {
		t.Fatal(err)
	}

	const n = 400_000
	if _, err := cache.RunBatched(r, mix.StreamCtx(context.Background(), 7, n), nil); err != nil {
		t.Fatal(err)
	}

	sizes := r.PartitionSets()
	if sizes[0] <= sizes[1] {
		t.Fatalf("heavy thread owns %d sets, light owns %d: adaptation never favoured the heavy footprint", sizes[0], sizes[1])
	}
	if r.Resizes() == 0 {
		t.Fatal("no resizes performed")
	}
	// Convergence within the interval budget: the total misses bound how
	// many windows closed, and the partition cannot have moved more than
	// one granule per window.
	maxWindows := r.Counters().Misses / interval
	if r.Resizes() > maxWindows {
		t.Fatalf("%d resizes exceed the %d closed windows", r.Resizes(), maxWindows)
	}
	// With the donor floored at one granule, the heavy partition converges
	// to its maximum share (15 of 16 granules = 960 sets) well inside this
	// trace; assert the converged fixed point, not just the direction.
	if sizes[0] != 960 || sizes[1] != 64 {
		t.Fatalf("converged split = %v, want [960 64]", sizes)
	}
}

func TestRepartitionDeterminismAndReset(t *testing.T) {
	l := testLayout(t)
	mk := func() *RepartitionCache {
		r, err := NewRepartitionCache(l, RepartitionConfig{Interval: 512})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	spec, err := workload.NewZipfSpec("z", workload.ZipfConfig{Blocks: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	run := func(r *RepartitionCache) (cache.Counters, []int, uint64) {
		if _, err := cache.RunBatched(r, spec.Stream(3, 100_000), nil); err != nil {
			t.Fatal(err)
		}
		return r.Counters(), r.PartitionSets(), r.Resizes()
	}
	r1, r2 := mk(), mk()
	c1, s1, z1 := run(r1)
	c2, s2, z2 := run(r2)
	if c1 != c2 || !reflect.DeepEqual(s1, s2) || z1 != z2 {
		t.Fatalf("two identical runs diverged: %+v/%v/%d vs %+v/%v/%d", c1, s1, z1, c2, s2, z2)
	}
	r1.Reset()
	if got := r1.PartitionSets(); !reflect.DeepEqual(got, []int{512, 512}) {
		t.Fatalf("Reset did not restore the even split: %v", got)
	}
	c3, s3, z3 := run(r1)
	if c3 != c1 || !reflect.DeepEqual(s3, s1) || z3 != z1 {
		t.Fatalf("run after Reset diverged: %+v/%v/%d vs %+v/%v/%d", c3, s3, z3, c1, s1, z1)
	}
}

func TestRepartitionByAccessSplitsFetches(t *testing.T) {
	l := testLayout(t)
	r, err := NewRepartitionCache(l, RepartitionConfig{By: ByAccess, Granules: 8})
	if err != nil {
		t.Fatal(err)
	}
	fetch := trace.Access{Addr: l.BlockAddr(5), Kind: trace.Fetch}
	read := trace.Access{Addr: l.BlockAddr(5), Kind: trace.Read}
	sf, sd := r.SetFor(fetch), r.SetFor(read)
	if sf == sd {
		t.Fatalf("fetch and data placed in the same set %d", sf)
	}
	if sf >= l.Sets()/2 || sd < l.Sets()/2 {
		t.Fatalf("initial halves violated: fetch→%d data→%d", sf, sd)
	}
}

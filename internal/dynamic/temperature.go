package dynamic

import (
	"fmt"
	"sort"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/trace"
)

// Temperature is the per-epoch heat class of one set.
type Temperature uint8

// Classes in increasing heat order; the steering rule moves victims from
// VeryHot sets into VeryCold ones.
const (
	VeryCold Temperature = iota
	Cold
	Hot
	VeryHot
)

// String names the class for reports.
func (t Temperature) String() string {
	switch t {
	case VeryCold:
		return "very-cold"
	case Cold:
		return "cold"
	case Hot:
		return "hot"
	case VeryHot:
		return "very-hot"
	}
	return fmt.Sprintf("temperature(%d)", uint8(t))
}

// TemperatureConfig sizes a TemperatureCache; zero fields take the listed
// defaults.
type TemperatureConfig struct {
	// Epoch is the number of accesses between set re-classifications
	// (default 8192).
	Epoch uint64
	// ShelterEntries bounds the block→set directory that finds steered
	// blocks on later accesses (default sets/4, one entry per Very-Cold
	// set).  The oldest registration is forgotten when full; its block
	// stays resident in its shelter set but costs a miss to rediscover.
	ShelterEntries int
}

// shelterEntry records where a steered block lives and which directory
// slot owns its registration (so a recycled slot only invalidates its own
// entry).
type shelterEntry struct {
	set  int
	slot int
}

// TemperatureCache is a direct-mapped cache with ChampSim-style set
// temperature steering.  Every Epoch accesses the sets are ranked by how
// often the closing epoch touched them and split into quartiles: Very-Hot,
// Hot, Cold, Very-Cold.  A block displaced from a Very-Hot set is not
// evicted — it is re-homed into a Very-Cold set chosen round-robin, and a
// bounded shelter directory remembers the move so later accesses find it
// with one extra probe (HitCycles 2, counted as a secondary hit).  Misses
// do not pay a shelter-probe penalty: the directory is consulted in
// parallel with the primary set, like the column-associative rehash.
type TemperatureCache struct {
	name   string
	layout addr.Layout
	epoch  uint64

	lines []cache.Line
	class []Temperature

	epochAccesses []uint64
	sinceClassify uint64
	classified    bool // at least one classification has happened

	shelter    map[uint64]shelterEntry
	shelterCap int
	ring       []uint64 // directory slots in FIFO recycle order
	ringPos    int

	veryCold   []int // ascending Very-Cold set ids from the last classification
	coldCursor int

	steered         uint64
	classifications uint64

	order []int // classification scratch

	counters cache.Counters
	perSet   cache.PerSet
}

// NewTemperatureCache validates the configuration against the layout and
// returns a ready cache.
func NewTemperatureCache(l addr.Layout, cfg TemperatureConfig) (*TemperatureCache, error) {
	sets := l.Sets()
	if sets < 4 {
		return nil, fmt.Errorf("dynamic: temperature classification needs at least 4 sets, layout has %d", sets)
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 8192
	}
	if cfg.ShelterEntries == 0 {
		cfg.ShelterEntries = sets / 4
	}
	if cfg.ShelterEntries < 1 || cfg.ShelterEntries > sets {
		return nil, fmt.Errorf("dynamic: shelter capacity %d out of range (1..%d)", cfg.ShelterEntries, sets)
	}
	t := &TemperatureCache{
		name:       fmt.Sprintf("temperature/%d/%d", cfg.Epoch, cfg.ShelterEntries),
		layout:     l,
		epoch:      cfg.Epoch,
		shelterCap: cfg.ShelterEntries,
	}
	t.Reset()
	return t, nil
}

// Name implements cache.Model.
func (t *TemperatureCache) Name() string { return t.name }

// Sets implements cache.Model.
func (t *TemperatureCache) Sets() int { return t.layout.Sets() }

// Reset implements cache.Model: contents, counters, heat state and the
// shelter directory all return to their initial state.
func (t *TemperatureCache) Reset() {
	sets := t.layout.Sets()
	t.lines = make([]cache.Line, sets)
	t.class = make([]Temperature, sets) // all VeryCold until first classification
	t.epochAccesses = make([]uint64, sets)
	t.sinceClassify = 0
	t.classified = false
	t.shelter = make(map[uint64]shelterEntry, t.shelterCap)
	t.ring = make([]uint64, t.shelterCap)
	t.ringPos = 0
	t.veryCold = nil
	t.coldCursor = 0
	t.steered = 0
	t.classifications = 0
	t.order = make([]int, sets)
	t.counters = cache.Counters{}
	t.perSet = cache.NewPerSet(sets)
}

// Steered returns how many victims were re-homed instead of evicted.
func (t *TemperatureCache) Steered() uint64 { return t.steered }

// Classifications returns how many epochs have closed.
func (t *TemperatureCache) Classifications() uint64 { return t.classifications }

// ClassOf returns the current temperature of a set.
func (t *TemperatureCache) ClassOf(set int) Temperature { return t.class[set] }

// Counters implements cache.Model.
func (t *TemperatureCache) Counters() cache.Counters { return t.counters }

// PerSet implements cache.Model.
func (t *TemperatureCache) PerSet() cache.PerSet { return t.perSet.Clone() }

// Access implements cache.Model.
func (t *TemperatureCache) Access(a trace.Access) cache.AccessResult {
	set := int(t.layout.Index(a.Addr))
	block := t.layout.Block(a.Addr)
	store := a.Kind == trace.Write

	res := cache.AccessResult{}
	ln := &t.lines[set]
	switch {
	case ln.Valid && ln.Block == block:
		res = cache.AccessResult{Hit: true, HitCycles: 1}
		if store {
			ln.Dirty = true
		}
		t.perSet.Hits[set]++
	case t.shelterHit(block, set, store, &res):
		// bookkeeping done inside shelterHit
	default:
		// Miss: fill the primary set, steering its victim when hot.
		if ln.Valid {
			if t.classified && t.class[set] == VeryHot && len(t.veryCold) > 0 {
				t.steer(*ln, &res)
			} else {
				res.Evicted = true
				res.EvictedBlock = ln.Block
				res.Writeback = ln.Dirty
			}
		}
		*ln = cache.Line{Valid: true, Block: block, Dirty: store}
		t.perSet.Misses[set]++
	}

	t.counters.Add(res)
	t.perSet.Accesses[set]++
	t.epochAccesses[set]++
	t.sinceClassify++
	if t.sinceClassify >= t.epoch {
		t.classify()
	}
	return res
}

// shelterHit probes the shelter directory for block; on a live entry it
// records a secondary hit (attributed to the sheltering set) and returns
// true.  Stale registrations — the sheltered line has since been replaced
// — are deleted lazily here.
func (t *TemperatureCache) shelterHit(block uint64, primary int, store bool, res *cache.AccessResult) bool {
	e, ok := t.shelter[block]
	if !ok {
		return false
	}
	ln := &t.lines[e.set]
	if !ln.Valid || ln.Block != block {
		delete(t.shelter, block)
		return false
	}
	*res = cache.AccessResult{Hit: true, SecondaryProbe: true, SecondaryHit: true, HitCycles: 2}
	if store {
		ln.Dirty = true
	}
	t.perSet.Hits[e.set]++
	return true
}

// steer re-homes a victim displaced from a Very-Hot set into the next
// Very-Cold set in round-robin order, evicting that set's resident (if
// any) and registering the move in the shelter directory.
func (t *TemperatureCache) steer(victim cache.Line, res *cache.AccessResult) {
	s2 := t.veryCold[t.coldCursor%len(t.veryCold)]
	t.coldCursor++
	dst := &t.lines[s2]
	if dst.Valid {
		res.Evicted = true
		res.EvictedBlock = dst.Block
		res.Writeback = dst.Dirty
	}
	*dst = victim
	t.register(victim.Block, s2)
	t.steered++
}

// register inserts a block→set mapping, recycling the oldest directory
// slot when full.
func (t *TemperatureCache) register(block uint64, set int) {
	old := t.ring[t.ringPos]
	if e, ok := t.shelter[old]; ok && e.slot == t.ringPos {
		delete(t.shelter, old)
	}
	t.ring[t.ringPos] = block
	t.shelter[block] = shelterEntry{set: set, slot: t.ringPos}
	t.ringPos = (t.ringPos + 1) % t.shelterCap
}

// classify closes an epoch: rank sets by epoch access count (ties broken
// by set number so the ordering is total and deterministic) and assign
// quartiles hottest-first.  The Very-Cold steering targets are kept in
// ascending set order and the round-robin cursor continues across epochs.
func (t *TemperatureCache) classify() {
	sets := len(t.order)
	for i := range t.order {
		t.order[i] = i
	}
	sort.Slice(t.order, func(i, j int) bool {
		a, b := t.order[i], t.order[j]
		if t.epochAccesses[a] != t.epochAccesses[b] {
			return t.epochAccesses[a] > t.epochAccesses[b]
		}
		return a < b
	})
	q := sets / 4
	for rank, set := range t.order {
		switch {
		case rank < q:
			t.class[set] = VeryHot
		case rank < 2*q:
			t.class[set] = Hot
		case rank < sets-q:
			t.class[set] = Cold
		default:
			t.class[set] = VeryCold
		}
	}
	t.veryCold = t.veryCold[:0]
	for set := 0; set < sets; set++ {
		if t.class[set] == VeryCold {
			t.veryCold = append(t.veryCold, set)
		}
	}
	for i := range t.epochAccesses {
		t.epochAccesses[i] = 0
	}
	t.sinceClassify = 0
	t.classified = true
	t.classifications++
}

// AccessBatch implements cache.BatchAccessor.
//
//lint:hotpath replay inner loop of the temperature-steered scheme
func (t *TemperatureCache) AccessBatch(batch []trace.Access) {
	for _, a := range batch {
		t.Access(a)
	}
}

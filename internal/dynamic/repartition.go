package dynamic

import (
	"fmt"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/trace"
)

// PartitionBy selects how RepartitionCache assigns an access to a
// partition.
type PartitionBy string

const (
	// ByThread partitions by hardware thread (SMT sharing, Figure 14's
	// setting made dynamic).
	ByThread PartitionBy = "thread"
	// ByAccess partitions instruction fetches from data references — the
	// I/D split Graphite's evolveNaive balances.  Requires exactly two
	// partitions: 0 holds fetches, 1 holds loads and stores.
	ByAccess PartitionBy = "access"
)

// RepartitionConfig sizes a RepartitionCache; zero fields take the listed
// defaults.
type RepartitionConfig struct {
	// Partitions is the number of reference classes sharing the cache
	// (default 2).
	Partitions int
	// By assigns accesses to partitions (default ByThread).
	By PartitionBy
	// Interval is the miss count per adaptation window: once the window's
	// total misses reach it, the partition with the most misses in the
	// window grows by one granule at the expense of the one with the
	// fewest (default 4096).  This is Graphite's mutation_interval.
	Interval uint64
	// Granules is the number of equal set-range units the cache divides
	// into; re-partitioning moves one granule at a time and no partition
	// shrinks below one.  Must divide the set count and be divisible by
	// Partitions (default 16).
	Granules int
}

// RepartitionCache is a direct-mapped cache whose set space is divided
// among reference classes, with the division itself adapted at run time:
// every Interval misses, the class missing hardest steals one granule of
// sets from the class missing least (Graphite OCache::evolveNaive, recast
// from way reallocation to set reallocation).  Because lines carry full
// block addresses, a remapping never produces a false hit — blocks left
// behind by a moved granule either re-hit exactly or miss and refill.
type RepartitionCache struct {
	name     string
	layout   addr.Layout
	by       PartitionBy
	parts    int
	interval uint64
	gsize    int // sets per granule

	counts []int // granules currently owned by each partition
	starts []int // first granule of each partition (prefix sums of counts)
	lines  []cache.Line

	windowMisses []uint64
	windowTotal  uint64
	resizes      uint64

	counters cache.Counters
	perSet   cache.PerSet
}

// NewRepartitionCache validates the configuration against the layout and
// returns a ready cache.
func NewRepartitionCache(l addr.Layout, cfg RepartitionConfig) (*RepartitionCache, error) {
	if cfg.Partitions == 0 {
		cfg.Partitions = 2
	}
	if cfg.By == "" {
		cfg.By = ByThread
	}
	if cfg.Interval == 0 {
		cfg.Interval = 4096
	}
	if cfg.Granules == 0 {
		cfg.Granules = 16
	}
	sets := l.Sets()
	switch cfg.By {
	case ByThread, ByAccess:
	default:
		return nil, fmt.Errorf("dynamic: unknown partition key %q", cfg.By)
	}
	if cfg.By == ByAccess && cfg.Partitions != 2 {
		return nil, fmt.Errorf("dynamic: %q partitioning requires exactly 2 partitions, got %d", ByAccess, cfg.Partitions)
	}
	if cfg.Partitions < 2 || cfg.Partitions > 16 {
		return nil, fmt.Errorf("dynamic: partition count %d out of range (2..16)", cfg.Partitions)
	}
	if cfg.Granules < cfg.Partitions || cfg.Granules > sets {
		return nil, fmt.Errorf("dynamic: granule count %d out of range (%d..%d)", cfg.Granules, cfg.Partitions, sets)
	}
	if cfg.Granules%cfg.Partitions != 0 {
		return nil, fmt.Errorf("dynamic: granule count %d must be divisible by %d partitions", cfg.Granules, cfg.Partitions)
	}
	if sets%cfg.Granules != 0 {
		return nil, fmt.Errorf("dynamic: granule count %d must divide %d sets", cfg.Granules, sets)
	}
	r := &RepartitionCache{
		name:     fmt.Sprintf("repartition/%s/%dx%d/%d", cfg.By, cfg.Partitions, cfg.Granules, cfg.Interval),
		layout:   l,
		by:       cfg.By,
		parts:    cfg.Partitions,
		interval: cfg.Interval,
		gsize:    sets / cfg.Granules,
		counts:   make([]int, cfg.Partitions),
		starts:   make([]int, cfg.Partitions),
	}
	for p := range r.counts {
		r.counts[p] = cfg.Granules / cfg.Partitions
	}
	r.Reset()
	return r, nil
}

// Name implements cache.Model.
func (r *RepartitionCache) Name() string { return r.name }

// Sets implements cache.Model.
func (r *RepartitionCache) Sets() int { return r.layout.Sets() }

// Reset implements cache.Model: contents, counters, the adaptation window
// and the partition map all return to their initial state.
func (r *RepartitionCache) Reset() {
	r.lines = make([]cache.Line, r.layout.Sets())
	r.counters = cache.Counters{}
	r.perSet = cache.NewPerSet(r.layout.Sets())
	r.windowMisses = make([]uint64, r.parts)
	r.windowTotal = 0
	r.resizes = 0
	per := 0
	for p := range r.counts {
		// counts may have drifted through adaptation; restore the even split.
		if per == 0 {
			total := 0
			for _, c := range r.counts {
				total += c
			}
			per = total / r.parts
		}
		r.counts[p] = per
	}
	r.restarts()
}

// restarts recomputes the partition start granules from the counts.
func (r *RepartitionCache) restarts() {
	acc := 0
	for p, c := range r.counts {
		r.starts[p] = acc
		acc += c
	}
}

// partitionOf classifies one access.
func (r *RepartitionCache) partitionOf(a trace.Access) int {
	if r.by == ByAccess {
		if a.Kind == trace.Fetch {
			return 0
		}
		return 1
	}
	return int(a.Thread) % r.parts
}

// SetFor returns the current placement of an access: the conventional
// index folded into its partition's present set range.
func (r *RepartitionCache) SetFor(a trace.Access) int {
	p := r.partitionOf(a)
	span := r.counts[p] * r.gsize
	return r.starts[p]*r.gsize + int(r.layout.Index(a.Addr))%span
}

// PartitionSets returns the number of sets each partition currently owns.
func (r *RepartitionCache) PartitionSets() []int {
	out := make([]int, r.parts)
	for p, c := range r.counts {
		out[p] = c * r.gsize
	}
	return out
}

// Resizes returns how many granule moves the adaptation has performed.
func (r *RepartitionCache) Resizes() uint64 { return r.resizes }

// Counters implements cache.Model.
func (r *RepartitionCache) Counters() cache.Counters { return r.counters }

// PerSet implements cache.Model.
func (r *RepartitionCache) PerSet() cache.PerSet { return r.perSet.Clone() }

// Access implements cache.Model.
func (r *RepartitionCache) Access(a trace.Access) cache.AccessResult {
	p := r.partitionOf(a)
	set := r.starts[p]*r.gsize + int(r.layout.Index(a.Addr))%(r.counts[p]*r.gsize)
	block := r.layout.Block(a.Addr)
	store := a.Kind == trace.Write

	res := cache.AccessResult{}
	ln := &r.lines[set]
	if ln.Valid && ln.Block == block {
		res = cache.AccessResult{Hit: true, HitCycles: 1}
		if store {
			ln.Dirty = true
		}
	} else {
		if ln.Valid {
			res.Evicted = true
			res.EvictedBlock = ln.Block
			res.Writeback = ln.Dirty
		}
		*ln = cache.Line{Valid: true, Block: block, Dirty: store}
	}

	r.counters.Add(res)
	r.perSet.Accesses[set]++
	if res.Hit {
		r.perSet.Hits[set]++
	} else {
		r.perSet.Misses[set]++
		r.windowMisses[p]++
		r.windowTotal++
		if r.windowTotal >= r.interval {
			r.evolve()
		}
	}
	return res
}

// evolve is one evolveNaive step: the partition with the most misses in
// the closed window grows by a granule taken from the partition with the
// fewest, provided the donor keeps at least one granule and the window
// was not a tie.  The window counters then restart.
func (r *RepartitionCache) evolve() {
	winner, loser := 0, -1
	for p := 1; p < r.parts; p++ {
		if r.windowMisses[p] > r.windowMisses[winner] {
			winner = p
		}
	}
	for p := 0; p < r.parts; p++ {
		if p == winner || r.counts[p] <= 1 {
			continue
		}
		if loser < 0 || r.windowMisses[p] < r.windowMisses[loser] {
			loser = p
		}
	}
	if loser >= 0 && r.windowMisses[winner] > r.windowMisses[loser] {
		r.counts[winner]++
		r.counts[loser]--
		r.restarts()
		r.resizes++
	}
	for p := range r.windowMisses {
		r.windowMisses[p] = 0
	}
	r.windowTotal = 0
}

// AccessBatch implements cache.BatchAccessor.
//
//lint:hotpath replay inner loop of the dynamic repartition scheme
func (r *RepartitionCache) AccessBatch(batch []trace.Access) {
	for _, a := range batch {
		r.Access(a)
	}
}

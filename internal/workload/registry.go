package workload

import (
	"context"
	"fmt"
	"sort"

	"cacheuniformity/internal/trace"
)

// Suite groups benchmarks the way the paper's figures do.
type Suite string

const (
	// MiBench is the embedded-benchmark suite of Figures 1, 4, 6, 7, 9-14.
	MiBench Suite = "mibench"
	// SPEC2006 is the suite of the Figure-8 hybrid experiments.
	SPEC2006 Suite = "spec2006"
)

// GenerateFunc produces a trace of exactly n accesses (or fewer only if
// n ≤ 0) from a seed.
type GenerateFunc func(seed uint64, n int) trace.Trace

// Spec describes one synthetic benchmark.
type Spec struct {
	Name        string
	Suite       Suite
	Description string
	// Key is the spec's stable trace-cache identity: two specs with equal
	// Keys produce byte-identical streams for equal (seed, n), no matter
	// what display Name they carry.  Registered kernels get "kernel/<name>"
	// here; declared compositions get their canonical declaration from the
	// registry.  Empty means "not cacheable" — NewSpec streams are
	// arbitrary (fault injection, live readers) and must never be compiled
	// or replayed from a cache.
	Key string
	// Generate materializes the trace; it is a thin Collect wrapper over
	// Stream and yields the byte-identical access sequence.
	Generate GenerateFunc

	run func(*gen)
	// stream, when non-nil, overrides the kernel-pump stream — the seam
	// NewSpec uses to wire arbitrary (e.g. fault-injected) readers into
	// everything that consumes a Spec.
	stream func(ctx context.Context, seed uint64, n int) trace.BatchReader
}

// NewSpec builds a benchmark around an arbitrary stream constructor
// instead of a generator kernel.  It is the hook the fault-injection
// tests use to feed erroring, truncating or slow streams through the real
// grid engine; mk must return a fresh single-use reader on every call and
// should honour ctx for cancellation (wrap with trace.WithContext when in
// doubt).  The spec is not registered: it resolves only when passed
// explicitly (core.GridOf), never by name.
//
//lint:allow ctxflow the Generate closure implements the context-free GenerateFunc contract; streaming consumers go through StreamCtx.
func NewSpec(name string, suite Suite, desc string, mk func(ctx context.Context, seed uint64, n int) trace.BatchReader) Spec {
	s := Spec{Name: name, Suite: suite, Description: desc, stream: mk}
	s.Generate = func(seed uint64, n int) trace.Trace {
		t, _ := trace.CollectBatch(mk(context.Background(), seed, n), n)
		return t
	}
	return s
}

// Stream returns a single-use batched stream of exactly n accesses keyed
// by seed.  Calling it again with the same arguments replays the
// identical sequence; abandoning the stream early requires
// trace.CloseBatch to release the generator goroutine.
//
//lint:allow ctxflow compatibility shim for context-free callers; cancellation-aware callers use StreamCtx.
func (s Spec) Stream(seed uint64, n int) trace.BatchReader {
	return s.StreamCtx(context.Background(), seed, n)
}

// StreamCtx is Stream bound to a context: the generator pump stops (even
// blocked mid-send) when ctx is cancelled, and ReadBatch reports the
// context's error instead of a silently short stream.
func (s Spec) StreamCtx(ctx context.Context, seed uint64, n int) trace.BatchReader {
	if s.stream != nil {
		return s.stream(ctx, seed, n)
	}
	return newGenStream(ctx, seed, n, 0, s.run)
}

// StreamFunc returns a replayable stream factory keyed by seed — the
// handle the two-pass profiling schemes (Givargis, Patel, selector)
// consume.
//
//lint:allow ctxflow compatibility shim for context-free callers; cancellation-aware callers use StreamFuncCtx.
func (s Spec) StreamFunc(seed uint64, n int) trace.StreamFunc {
	return s.StreamFuncCtx(context.Background(), seed, n)
}

// StreamFuncCtx is StreamFunc with every produced reader bound to ctx.
func (s Spec) StreamFuncCtx(ctx context.Context, seed uint64, n int) trace.StreamFunc {
	return func() trace.BatchReader { return s.StreamCtx(ctx, seed, n) }
}

// registry holds all benchmark generators, keyed by name.
var registry = map[string]Spec{}

func register(name string, suite Suite, desc string, run func(*gen)) {
	if _, dup := registry[name]; dup {
		panic("workload: duplicate benchmark " + name)
	}
	s := Spec{Name: name, Suite: suite, Description: desc, Key: "kernel/" + name, run: run}
	s.Generate = func(seed uint64, n int) trace.Trace {
		return collectStream(seed, n, run)
	}
	registry[name] = s
}

func init() {
	register("adpcm", MiBench, "speech codec: streaming buffers + tiny quantiser tables", adpcmRun)
	register("basicmath", MiBench, "numeric kernels: small arrays with cache-span-aligned conflicts", basicMathRun)
	register("bitcount", MiBench, "bit counting: 256-byte LUT, tiny uniform working set", bitCountRun)
	register("crc", MiBench, "crc32: 1 KiB table + sequential buffer", crcRun)
	register("dijkstra", MiBench, "shortest path: adjacency-matrix rows + distance arrays", dijkstraRun)
	register("fft", MiBench, "radix-2 FFT: power-of-two butterfly strides (Figure 1)", fftRun)
	register("patricia", MiBench, "trie lookups: heap pointer chasing beyond cache capacity", patriciaRun)
	register("qsort", MiBench, "quicksort: sequential partition sweeps + deep stack", qSortRun)
	register("rijndael", MiBench, "AES: hot T-tables + streaming blocks", rijndaelRun)
	register("sha", MiBench, "SHA-1: message buffer and schedule one cache-span apart", shaRun)
	register("susan", MiBench, "image smoothing: 3-row scans, non-power-of-two pitch", susanRun)

	register("astar", SPEC2006, "A* grid search: 2-D walk + binary heap", astarRun)
	register("bzip2", SPEC2006, "compression: big-block streams + sort gathers", bzip2Run)
	register("calculix", SPEC2006, "FEM: column-major walks on power-of-two pitch", calculixRun)
	register("gromacs", SPEC2006, "MD: array sweeps + neighbour gathers", gromacsRun)
	register("hmmer", SPEC2006, "profile HMM: lockstep DP rows + hot tables", hmmerRun)
	register("libquantum", SPEC2006, "quantum sim: pure streaming sweeps", libquantumRun)
	register("mcf", SPEC2006, "network simplex: giant pointer chase", mcfRun)
	register("milc", SPEC2006, "lattice QCD: multiple power-of-two strides", milcRun)
	register("namd", SPEC2006, "MD: random pairwise force gathers", namdRun)
	register("sjeng", SPEC2006, "chess: huge transposition table + hot board", sjengRun)
}

// Lookup returns the benchmark with the given name.
func Lookup(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return s, nil
}

// MustLookup is Lookup but panics on unknown names; for fixed experiment
// grids.
//
//lint:allow nopanic Must-prefixed variant documented to panic; callers with dynamic names use Lookup.
func MustLookup(name string) Spec {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all benchmark names, sorted, optionally filtered by suite
// (empty Suite means all).
func Names(suite Suite) []string {
	var out []string
	//lint:allow detrand the collected names are sorted immediately below, so iteration order cannot leak out.
	for name, s := range registry {
		if suite == "" || s.Suite == suite {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// MiBenchOrder lists the MiBench benchmarks in the paper's figure order.
var MiBenchOrder = []string{
	"adpcm", "basicmath", "bitcount", "crc", "dijkstra", "fft",
	"patricia", "qsort", "rijndael", "sha", "susan",
}

// SPECOrder lists the SPEC benchmarks in Figure 8's order.
var SPECOrder = []string{
	"astar", "bzip2", "calculix", "gromacs", "hmmer",
	"libquantum", "mcf", "milc", "namd", "sjeng",
}

package workload

import (
	"context"
	"fmt"

	"cacheuniformity/internal/trace"
)

// Compile materializes the spec's canonical access stream — the exact
// sequence Stream(seed, n) would replay — into a segmented compiled trace
// (see trace.Compile).  This is the once-per-artifact step behind trace
// caching: every later Grid/RunOne/simd request decodes the compiled
// bytes instead of re-running the generator goroutine pump.
//
// Specs with an empty Key refuse to compile: their streams are arbitrary
// (fault injection, live readers) and carry no cacheable identity.
func (s Spec) Compile(ctx context.Context, seed uint64, n, segLen int) (*trace.Compiled, error) {
	if s.Key == "" {
		return nil, fmt.Errorf("workload: spec %q has no trace-cache identity", s.Name)
	}
	c, err := trace.Compile(s.StreamCtx(ctx, seed, n), segLen)
	if err != nil {
		return nil, fmt.Errorf("workload: compile %s: %w", s.Name, err)
	}
	return c, nil
}

package workload

import (
	"testing"

	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/hier"
	"cacheuniformity/internal/trace"
)

func TestInstructionStreamAllFetches(t *testing.T) {
	tr := InstructionStream(1, 30_000)
	if len(tr) != 30_000 {
		t.Fatalf("length = %d", len(tr))
	}
	for i, a := range tr {
		if a.Kind != trace.Fetch {
			t.Fatalf("access %d kind = %v", i, a.Kind)
		}
		if uint64(a.Addr) < TextBase || uint64(a.Addr) > TextBase+1<<20 {
			t.Fatalf("fetch outside text region: %v", a.Addr)
		}
	}
}

func TestInstructionStreamLocality(t *testing.T) {
	// Instruction fetch is the most cache-friendly stream there is: the
	// L1I miss rate must be tiny.
	tr := InstructionStream(2, 100_000)
	l1i := mustCache(cache.Config{Layout: l32k, Ways: 1, WriteAllocate: true})
	ctr := cache.Run(l1i, tr)
	if ctr.MissRate() > 0.02 {
		t.Errorf("L1I miss rate = %.4f, want < 0.02", ctr.MissRate())
	}
}

func TestMixedStreamRatioAndRouting(t *testing.T) {
	tr := MixedStream(MustLookup("dijkstra"), 3, 40_000, 3)
	if len(tr) != 40_000 {
		t.Fatalf("length = %d", len(tr))
	}
	fetches, data := 0, 0
	for _, a := range tr {
		if a.Kind == trace.Fetch {
			fetches++
		} else {
			data++
		}
	}
	ratio := float64(fetches) / float64(data)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("fetch:data ratio = %.2f, want ≈ 3", ratio)
	}
	// Split hierarchy: fetches land in L1I, the rest in L1D.
	l1d := mustCache(cache.Config{Layout: l32k, Ways: 1, WriteAllocate: true})
	l1i := mustCache(cache.Config{Layout: l32k, Ways: 1, WriteAllocate: true})
	l2 := mustCache(cache.Config{Layout: l32k, Ways: 8, WriteAllocate: true})
	h := mustHier(hier.Config{L1D: l1d, L1I: l1i, L2: l2})
	h.Run(tr)
	if got := l1i.Counters().Accesses; got != uint64(fetches) {
		t.Errorf("L1I accesses = %d, want %d", got, fetches)
	}
	if got := l1d.Counters().Accesses; got != uint64(data) {
		t.Errorf("L1D accesses = %d, want %d", got, data)
	}
	// The I-side hit rate dwarfs the D-side's on a data-conflict workload.
	if l1i.Counters().MissRate() > l1d.Counters().MissRate() {
		t.Error("instruction stream missing more than data stream")
	}
}

func TestMixedStreamDefaultsRatio(t *testing.T) {
	tr := MixedStream(MustLookup("crc"), 1, 8_000, 0) // coerced to 3
	if len(tr) != 8_000 {
		t.Errorf("length = %d", len(tr))
	}
}

package workload

import (
	"context"
	"io"

	"cacheuniformity/internal/rng"
	"cacheuniformity/internal/trace"
)

// InstructionStream synthesises an instruction-fetch trace (Kind=Fetch)
// for the L1I side of the paper's split-cache configuration: sequential
// 4-byte fetch runs inside loop bodies, backward branches re-entering the
// loop, and calls into a Zipf-popular set of functions.  The paper's
// headline experiments report D-cache behaviour, but its setup simulates
// "32kB direct mapped L1 data and instruction caches" — this generator
// lets the hierarchy exercise both.
func InstructionStream(seed uint64, n int) trace.Trace {
	return materialize(seed, n, instructionRun)
}

// InstructionBatch is the streaming form of InstructionStream.
//
//lint:allow ctxflow compatibility shim for context-free callers; cancellation-aware callers use InstructionBatchCtx.
func InstructionBatch(seed uint64, n int) trace.BatchReader {
	return InstructionBatchCtx(context.Background(), seed, n)
}

// InstructionBatchCtx is InstructionBatch bound to a context: the
// generator pump stops when ctx is cancelled and ReadBatch surfaces the
// context's error.
func InstructionBatchCtx(ctx context.Context, seed uint64, n int) trace.BatchReader {
	return newGenStream(ctx, seed, n, 0, instructionRun)
}

func instructionRun(g *gen) {
	const (
		funcCount = 64   // distinct functions
		funcSize  = 2048 // bytes of code each
	)
	z := rng.NewZipf(g.src, 1.1, funcCount)
	for !g.full() {
		fn := z.Next()
		base := uint64(TextBase) + uint64(fn*funcSize)
		// A function activation: a few loop iterations over a body.
		bodyLen := 16 + g.src.Intn(48) // instructions per loop body
		iters := 1 + g.src.Intn(8)
		for it := 0; it < iters && !g.full(); it++ {
			for pc := 0; pc < bodyLen && !g.full(); pc++ {
				g.emit(base+uint64(pc*4), trace.Fetch)
			}
		}
		// Fall-through epilogue.
		for pc := bodyLen; pc < bodyLen+8 && !g.full(); pc++ {
			g.emit(base+uint64(pc*4), trace.Fetch)
		}
	}
}

// MixedBatch streams an instruction stream interleaved with a data
// benchmark at the given fetches-per-data-access ratio (real integer
// codes run ≈ 3-4 fetches per memory operand).  The result drives a split
// L1I/L1D hierarchy; hier.Hierarchy routes Fetch accesses to the L1I.
//
//lint:allow ctxflow compatibility shim for context-free callers; cancellation-aware callers use MixedBatchCtx.
func MixedBatch(spec Spec, seed uint64, n int, fetchesPerData int) trace.BatchReader {
	return MixedBatchCtx(context.Background(), spec, seed, n, fetchesPerData)
}

// MixedBatchCtx is MixedBatch with both interleaved generator pumps
// bound to ctx, so cancelling it releases the fetch and data goroutines
// even mid-send.
func MixedBatchCtx(ctx context.Context, spec Spec, seed uint64, n int, fetchesPerData int) trace.BatchReader {
	if fetchesPerData < 1 {
		fetchesPerData = 3
	}
	dataN := n / (fetchesPerData + 1)
	fetchN := n - dataN
	m := &mixedReader{
		fetch: trace.NewCursor(InstructionBatchCtx(ctx, seed+1, fetchN)),
		data:  trace.NewCursor(spec.StreamCtx(ctx, seed, dataN)),
		fpd:   fetchesPerData,
		n:     n,
	}
	return trace.Batched(m)
}

// MixedStreamFunc returns a replayable factory for MixedBatch streams.
//
//lint:allow ctxflow compatibility shim for context-free callers; cancellation-aware callers use MixedStreamFuncCtx.
func MixedStreamFunc(spec Spec, seed uint64, n int, fetchesPerData int) trace.StreamFunc {
	return func() trace.BatchReader { return MixedBatch(spec, seed, n, fetchesPerData) }
}

// MixedStreamFuncCtx is MixedStreamFunc with every produced reader bound
// to ctx — the form sim.RunContext uses so a cancelled run stops its
// mixed-stream pumps.
func MixedStreamFuncCtx(ctx context.Context, spec Spec, seed uint64, n int, fetchesPerData int) trace.StreamFunc {
	return func() trace.BatchReader { return MixedBatchCtx(ctx, spec, seed, n, fetchesPerData) }
}

// MixedStream materializes a MixedBatch stream — kept as the slice-based
// entry point for callers that need the whole trace in memory.
func MixedStream(spec Spec, seed uint64, n int, fetchesPerData int) trace.Trace {
	t, _ := trace.CollectBatch(MixedBatch(spec, seed, n, fetchesPerData), n)
	return t
}

// mixedReader interleaves a fetch cursor with a data cursor: up to fpd
// fetches, then one data access, ending after n accesses or when both
// inputs are exhausted (whichever comes first).
type mixedReader struct {
	fetch, data         *trace.Cursor
	fpd                 int
	n, emitted          int
	k                   int // fetch slots used in the current cycle
	fetchDone, dataDone bool
}

func (m *mixedReader) Next() (trace.Access, error) {
	for {
		if m.emitted >= m.n || (m.fetchDone && m.dataDone) {
			return trace.Access{}, io.EOF
		}
		if m.k < m.fpd && !m.fetchDone {
			a, err := m.fetch.Next()
			if err == io.EOF {
				m.fetchDone = true
				continue
			}
			if err != nil {
				return trace.Access{}, err
			}
			m.k++
			m.emitted++
			return a, nil
		}
		// Data slot: one access, then a new fetch cycle.
		m.k = 0
		if m.dataDone {
			continue
		}
		a, err := m.data.Next()
		if err == io.EOF {
			m.dataDone = true
			continue
		}
		if err != nil {
			return trace.Access{}, err
		}
		m.emitted++
		return a, nil
	}
}

func (m *mixedReader) Close() error {
	ferr, derr := m.fetch.Close(), m.data.Close()
	if ferr != nil {
		return ferr
	}
	return derr
}

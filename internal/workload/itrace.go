package workload

import (
	"cacheuniformity/internal/rng"
	"cacheuniformity/internal/trace"
)

// InstructionStream synthesises an instruction-fetch trace (Kind=Fetch)
// for the L1I side of the paper's split-cache configuration: sequential
// 4-byte fetch runs inside loop bodies, backward branches re-entering the
// loop, and calls into a Zipf-popular set of functions.  The paper's
// headline experiments report D-cache behaviour, but its setup simulates
// "32kB direct mapped L1 data and instruction caches" — this generator
// lets the hierarchy exercise both.
func InstructionStream(seed uint64, n int) trace.Trace {
	g := newGen(seed, n)
	const (
		funcCount = 64   // distinct functions
		funcSize  = 2048 // bytes of code each
	)
	z := rng.NewZipf(g.src, 1.1, funcCount)
	for !g.full() {
		fn := z.Next()
		base := uint64(TextBase) + uint64(fn*funcSize)
		// A function activation: a few loop iterations over a body.
		bodyLen := 16 + g.src.Intn(48) // instructions per loop body
		iters := 1 + g.src.Intn(8)
		for it := 0; it < iters && !g.full(); it++ {
			for pc := 0; pc < bodyLen && !g.full(); pc++ {
				g.emit(base+uint64(pc*4), trace.Fetch)
			}
		}
		// Fall-through epilogue.
		for pc := bodyLen; pc < bodyLen+8 && !g.full(); pc++ {
			g.emit(base+uint64(pc*4), trace.Fetch)
		}
	}
	return g.out
}

// MixedStream interleaves an instruction stream with a data benchmark at
// the given fetches-per-data-access ratio (real integer codes run ≈ 3-4
// fetches per memory operand).  The result drives a split L1I/L1D
// hierarchy; hier.Hierarchy routes Fetch accesses to the L1I.
func MixedStream(spec Spec, seed uint64, n int, fetchesPerData int) trace.Trace {
	if fetchesPerData < 1 {
		fetchesPerData = 3
	}
	dataN := n / (fetchesPerData + 1)
	fetchN := n - dataN
	data := spec.Generate(seed, dataN)
	fetch := InstructionStream(seed+1, fetchN)
	out := make(trace.Trace, 0, n)
	di, fi := 0, 0
	for len(out) < n {
		for k := 0; k < fetchesPerData && fi < len(fetch) && len(out) < n; k++ {
			out = append(out, fetch[fi])
			fi++
		}
		if di < len(data) && len(out) < n {
			out = append(out, data[di])
			di++
		}
		if fi >= len(fetch) && di >= len(data) {
			break
		}
	}
	return out
}

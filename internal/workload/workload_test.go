package workload

import (
	"testing"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/stats"
	"cacheuniformity/internal/trace"
)

var l32k = addr.MustLayout(32, 1024, 32)

func TestRegistryComplete(t *testing.T) {
	if got := len(Names("")); got != 21 {
		t.Errorf("registered benchmarks = %d, want 21", got)
	}
	if got := len(Names(MiBench)); got != 11 {
		t.Errorf("MiBench benchmarks = %d, want 11", got)
	}
	if got := len(Names(SPEC2006)); got != 10 {
		t.Errorf("SPEC benchmarks = %d, want 10", got)
	}
	for _, name := range MiBenchOrder {
		s := MustLookup(name)
		if s.Suite != MiBench {
			t.Errorf("%s suite = %s", name, s.Suite)
		}
	}
	for _, name := range SPECOrder {
		if MustLookup(name).Suite != SPEC2006 {
			t.Errorf("%s not SPEC", name)
		}
	}
	if _, err := Lookup("nosuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup(unknown) did not panic")
		}
	}()
	MustLookup("nosuch")
}

func TestAllGeneratorsProduceExactLengthAndValidAddrs(t *testing.T) {
	const n = 20000
	for _, name := range Names("") {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := MustLookup(name).Generate(1, n)
			if len(tr) != n {
				t.Fatalf("length = %d, want %d", len(tr), n)
			}
			for i, a := range tr {
				if uint64(a.Addr) >= 1<<32 {
					t.Fatalf("access %d beyond 32-bit space: %v", i, a.Addr)
				}
				if !a.Kind.Valid() {
					t.Fatalf("access %d has invalid kind %d", i, a.Kind)
				}
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Names("") {
		a := MustLookup(name).Generate(42, 5000)
		b := MustLookup(name).Generate(42, 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: traces diverge at %d", name, i)
			}
		}
	}
}

func TestGeneratorsSeedSensitive(t *testing.T) {
	// Generators with stochastic components must vary with the seed;
	// purely deterministic generators (fft, sha, ...) legitimately do not.
	stochastic := []string{"bitcount", "crc", "dijkstra", "patricia", "astar", "sjeng", "namd"}
	for _, name := range stochastic {
		a := MustLookup(name).Generate(1, 5000)
		b := MustLookup(name).Generate(2, 5000)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 give identical traces", name)
		}
	}
}

func TestGeneratorsMixKinds(t *testing.T) {
	// Every benchmark must issue both loads and stores (they model real
	// programs); none should be write-dominated.
	for _, name := range Names("") {
		tr := MustLookup(name).Generate(3, 30000)
		s := tr.Summarize(l32k)
		if s.Reads == 0 {
			t.Errorf("%s: no reads", name)
		}
		if s.Writes == 0 {
			t.Errorf("%s: no writes", name)
		}
		if s.Writes > s.Reads {
			t.Errorf("%s: writes (%d) exceed reads (%d)", name, s.Writes, s.Reads)
		}
	}
}

// missRate replays a benchmark through the paper's baseline cache.
func missRate(t *testing.T, name string, n int) float64 {
	t.Helper()
	c := mustCache(cache.Config{Layout: l32k, Ways: 1, WriteAllocate: true})
	tr := MustLookup(name).Generate(7, n)
	return cache.Run(c, tr).MissRate()
}

func TestWorkloadCharacterBaselineMissRates(t *testing.T) {
	// The qualitative contract with the paper: tiny-working-set benchmarks
	// barely miss; conflict-engineered ones miss heavily.
	low := []string{"adpcm", "bitcount", "crc"}
	for _, name := range low {
		if mr := missRate(t, name, 100000); mr > 0.05 {
			t.Errorf("%s baseline miss rate = %.3f, want < 0.05", name, mr)
		}
	}
	for _, name := range []string{"sha", "basicmath"} {
		if mr := missRate(t, name, 100000); mr < 0.15 {
			t.Errorf("%s baseline miss rate = %.3f, want conflict-heavy (> 0.15)", name, mr)
		}
	}
	// FFT mixes a hot (hit-dominated) core with conflicting sweeps; its
	// baseline miss rate is high for an L1 but below the pure conflict
	// benchmarks.
	if mr := missRate(t, "fft", 100000); mr < 0.08 {
		t.Errorf("fft baseline miss rate = %.3f, want > 0.08", mr)
	}
	// Capacity-bound pointer chasers miss a lot too, but for a different
	// reason (that indexing cannot fix).
	if mr := missRate(t, "mcf", 100000); mr < 0.2 {
		t.Errorf("mcf baseline miss rate = %.3f, want > 0.2", mr)
	}
}

func TestFFTAccessNonUniformity(t *testing.T) {
	// Figure 1's premise: FFT's per-set access distribution is extremely
	// skewed under conventional indexing — most sets far below average,
	// a few far above.
	c := mustCache(cache.Config{Layout: l32k, Ways: 1, WriteAllocate: true})
	tr := MustLookup("fft").Generate(1, 400000)
	cache.Run(c, tr)
	ps := c.PerSet()
	below := stats.FractionBelow(ps.Accesses, 0.5)
	above := stats.FractionAtLeast(ps.Accesses, 2)
	if below < 0.5 {
		t.Errorf("FFT: only %.1f%% of sets below half-average accesses; paper reports ~90%%", 100*below)
	}
	if above < 0.01 {
		t.Errorf("FFT: only %.2f%% of sets at ≥2× average; expected a hot minority", 100*above)
	}
	m, err := stats.MomentsOfCounts(ps.Accesses)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kurtosis < 1 {
		t.Errorf("FFT access kurtosis = %.2f, want strongly peaked (> 1)", m.Kurtosis)
	}
	// Contrast: susan (non-power-of-two pitch) must be far more uniform.
	c2 := mustCache(cache.Config{Layout: l32k, Ways: 1, WriteAllocate: true})
	cache.Run(c2, MustLookup("susan").Generate(1, 400000))
	m2, _ := stats.MomentsOfCounts(c2.PerSet().Accesses)
	if m2.Kurtosis >= m.Kurtosis {
		t.Errorf("susan kurtosis %.2f not below fft kurtosis %.2f", m2.Kurtosis, m.Kurtosis)
	}
}

func TestShortTraces(t *testing.T) {
	for _, name := range Names("") {
		tr := MustLookup(name).Generate(1, 10)
		if len(tr) != 10 {
			t.Errorf("%s: short trace length %d", name, len(tr))
		}
	}
}

var _ = trace.Read // silence unused-import drift if assertions change

package workload

import (
	"context"
	"fmt"
	"math"
	"strings"

	"cacheuniformity/internal/trace"
)

// Synthetic is the suite of parametrised workloads built at run time from
// declarations (roster files, simd request bodies) rather than registered
// kernels — the workload side of the declarative registry.
const Synthetic Suite = "synthetic"

// ZipfConfig parametrises a skewed-popularity workload: accesses drawn
// from a Zipf(s) law over a fixed block population, the canonical stressor
// for per-set uniformity (hot blocks concentrate traffic on their sets).
// Zero fields take the listed defaults.
type ZipfConfig struct {
	// Blocks is the distinct-block population (default 4096).
	Blocks int
	// BlockBytes is the spacing between consecutive blocks (default 32,
	// the paper's line size, so the population is contiguous).
	BlockBytes int
	// Skew is the Zipf exponent s (default 1.2; 0 is uniform).
	Skew float64
	// WriteFrac is the probability an access is a store (default 0.25).
	WriteFrac float64
}

// NewZipfSpec builds a synthetic Zipf workload.  Like every kernel, the
// result is a deterministic function of (seed, length); the popularity
// ranking scatters over the block population through a seed-fixed
// permutation, so distinct seeds hammer distinct sets.
func NewZipfSpec(name string, cfg ZipfConfig) (Spec, error) {
	if cfg.Blocks == 0 {
		cfg.Blocks = 4096
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 32
	}
	if cfg.Skew == 0 {
		cfg.Skew = 1.2
	}
	if cfg.Blocks < 2 || cfg.Blocks > 1<<24 {
		return Spec{}, fmt.Errorf("workload: zipf blocks %d out of range (2..%d)", cfg.Blocks, 1<<24)
	}
	if cfg.BlockBytes < 1 || cfg.BlockBytes > 1<<20 {
		return Spec{}, fmt.Errorf("workload: zipf block_bytes %d out of range (1..%d)", cfg.BlockBytes, 1<<20)
	}
	if math.IsNaN(cfg.Skew) || cfg.Skew < 0 || cfg.Skew > 8 {
		return Spec{}, fmt.Errorf("workload: zipf skew %v out of range (0..8)", cfg.Skew)
	}
	if math.IsNaN(cfg.WriteFrac) || cfg.WriteFrac < 0 || cfg.WriteFrac > 1 {
		return Spec{}, fmt.Errorf("workload: zipf write_frac %v out of range (0..1)", cfg.WriteFrac)
	}
	blocks, bb, skew, wf := cfg.Blocks, cfg.BlockBytes, cfg.Skew, cfg.WriteFrac
	run := func(g *gen) {
		for !g.full() {
			g.zipfTable(DataBase, blocks, bb, 1<<30, skew, wf)
		}
	}
	s := Spec{
		Name:  name,
		Suite: Synthetic,
		Description: fmt.Sprintf("Zipf(s=%g) over %d blocks × %d B, %g%% stores",
			skew, blocks, bb, wf*100),
		run: run,
	}
	s.Generate = func(seed uint64, n int) trace.Trace {
		return collectStream(seed, n, run)
	}
	return s, nil
}

// NewInterleaveSpec builds a workload that round-robins the given parts
// one access at a time, tagging part i's accesses with thread id i — the
// multi-programmed SMT mixes of Figure 14, composable from declarations.
// Part i streams with seed+i so homogeneous mixes do not run in lockstep;
// the total length is divided evenly with the remainder going to the
// earliest parts.
func NewInterleaveSpec(name string, parts []Spec) (Spec, error) {
	if len(parts) < 2 || len(parts) > 16 {
		return Spec{}, fmt.Errorf("workload: interleave needs 2..16 parts, got %d", len(parts))
	}
	names := make([]string, len(parts))
	for i, p := range parts {
		if p.Name == "" {
			return Spec{}, fmt.Errorf("workload: interleave part %d is empty", i)
		}
		names[i] = p.Name
	}
	ps := append([]Spec(nil), parts...)
	mk := func(ctx context.Context, seed uint64, n int) trace.BatchReader {
		readers := make([]trace.BatchReader, len(ps))
		per, rem := n/len(ps), n%len(ps)
		for i, p := range ps {
			ni := per
			if i < rem {
				ni++
			}
			readers[i] = p.StreamCtx(ctx, seed+uint64(i), ni)
		}
		return trace.RoundRobinBatch(readers...)
	}
	return NewSpec(name, Synthetic,
		"interleave of "+strings.Join(names, "+"), mk), nil
}

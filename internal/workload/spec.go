package workload

import "cacheuniformity/internal/trace"

// SPEC CPU2006-flavoured generators for the Figure-8 hybrid experiments
// (column-associative cache with non-conventional primary indexing).

// Astar models 473.astar: A* over a 2-D grid — a local random walk
// touching node records plus a binary-heap open list with hot top levels.
func Astar(seed uint64, n int) trace.Trace { return materialize(seed, n, astarRun) }

func astarRun(g *gen) {
	const dim = 512 // 512×512 grid of 8-byte node records
	grid := uint64(DataBase)
	heap := uint64(HeapBase)
	r, c := dim/2, dim/2
	for !g.full() {
		// expand current node: read 4 neighbours
		for _, d := range [4][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
			nr, nc := (r+d[0]+dim)%dim, (c+d[1]+dim)%dim
			g.emit(grid+uint64((nr*dim+nc)*8), trace.Read)
		}
		g.emit(grid+uint64((r*dim+c)*8), trace.Write) // close node
		// heap push/pop: touch a root-to-leaf path (hot near the root)
		depth := 1 + g.src.Intn(14)
		idx := 1
		for d := 0; d < depth && !g.full(); d++ {
			g.emit(heap+uint64(idx*8), trace.Read)
			idx = idx*2 + g.src.Intn(2)
		}
		g.emit(heap+8, trace.Write)
		// drift the walk
		r = (r + g.src.Intn(3) - 1 + dim) % dim
		c = (c + g.src.Intn(3) - 1 + dim) % dim
	}
}

// Bzip2 models 401.bzip2: long sequential block reads, random accesses
// into the block during suffix sorting, and small frequency tables.
func Bzip2(seed uint64, n int) trace.Trace { return materialize(seed, n, bzip2Run) }

func bzip2Run(g *gen) {
	const blockSize = 1 << 19 // 512 KiB working block
	block := uint64(DataBase)
	freq := uint64(HeapBase)
	for !g.full() {
		g.seq(block, 4096, 1, 0)                  // stream in
		g.gather(block, blockSize, 1, 4096, 0.25) // sort pointers jump around
		g.zipfTable(freq, 256, 4, 512, 0.6, 0.5)  // symbol frequencies
	}
}

// Calculix models 454.calculix: FEM solver sweeps — column-major walks
// over matrices whose power-of-two leading dimension folds columns onto
// the same sets, plus sequential right-hand-side vectors.
func Calculix(seed uint64, n int) trace.Trace { return materialize(seed, n, calculixRun) }

func calculixRun(g *gen) {
	const rows, cols = 1024, 64 // 8-byte elements, pitch 512 B (pow2)
	matrix := uint64(DataBase)
	rhs := uint64(HeapBase)
	for !g.full() {
		pitch := uint64(cols * 8)
		for c := 0; c < cols && !g.full(); c++ { // column-major elimination
			for r := 0; r < rows && !g.full(); r++ {
				g.emit(matrix+uint64(r)*pitch+uint64(c*8), trace.Read)
				if r%16 == 15 {
					g.emit(rhs+uint64(r*8), trace.Write) // rhs update
				}
			}
		}
		g.seq(rhs, rows, 8, 4)
	}
}

// Gromacs models 435.gromacs: molecular dynamics — sequential sweeps over
// position/force arrays plus neighbour-list gathers.
func Gromacs(seed uint64, n int) trace.Trace { return materialize(seed, n, gromacsRun) }

func gromacsRun(g *gen) {
	const atoms = 24000
	pos := uint64(DataBase)
	force := uint64(DataBase + 0x0100_0000)
	for !g.full() {
		for i := 0; i < atoms && !g.full(); i++ {
			g.emit(pos+uint64(i*12), trace.Read)
			for k := 0; k < 3 && !g.full(); k++ { // a few neighbours
				j := g.src.Intn(atoms)
				g.emit(pos+uint64(j*12), trace.Read)
			}
			g.emit(force+uint64(i*12), trace.Write)
		}
	}
}

// Hmmer models 456.hmmer: profile HMM dynamic programming — three live DP
// rows scanned in lockstep plus Zipf-hot transition tables.
func Hmmer(seed uint64, n int) trace.Trace { return materialize(seed, n, hmmerRun) }

func hmmerRun(g *gen) {
	const modelLen = 2048
	dp := uint64(DataBase)
	tbl := uint64(HeapBase)
	for !g.full() {
		for i := 0; i < modelLen && !g.full(); i++ {
			g.emit(dp+uint64(i*4), trace.Read)               // M row
			g.emit(dp+uint64((modelLen+i)*4), trace.Read)    // I row
			g.emit(dp+uint64((2*modelLen+i)*4), trace.Write) // D row
			g.emit(tbl+uint64(g.src.Intn(400)*4), trace.Read)
		}
	}
}

// Libquantum models 462.libquantum: long streaming sweeps over a large
// quantum-register vector — pure sequential traffic, uniform by nature.
func Libquantum(seed uint64, n int) trace.Trace { return materialize(seed, n, libquantumRun) }

func libquantumRun(g *gen) {
	const qubits = 1 << 18 // 2 MiB of 8-byte amplitudes
	reg := uint64(DataBase)
	for !g.full() {
		g.seq(reg, qubits, 8, 2) // toffoli-style read-modify-write sweep
	}
}

// MCF models 429.mcf: network-simplex pointer chasing over a huge arc/node
// graph — the memory-bound SPEC poster child; misses are capacity misses.
func MCF(seed uint64, n int) trace.Trace { return materialize(seed, n, mcfRun) }

func mcfRun(g *gen) {
	const nodesN = 120000 // ~7.5 MiB of 64-byte node records
	c := g.newChaser(HeapBase, nodesN, 64)
	for !g.full() {
		c.walk(g, 200, true)
		g.seq(DataBase, 512, 32, 8) // arc array segment scan
	}
}

// Milc models 433.milc: 4-D lattice QCD — su3 matrix sweeps with several
// power-of-two strides (the lattice dimensions), a classic conflict mix.
func Milc(seed uint64, n int) trace.Trace { return materialize(seed, n, milcRun) }

func milcRun(g *gen) {
	const sites = 4096 // 16^3 lattice, 72-byte su3 matrix padded to 128
	lattice := uint64(DataBase)
	for !g.full() {
		for _, stride := range []uint64{128, 128 * 16, 128 * 256} {
			g.strided(lattice, sites/4, stride%uint64(sites*128), trace.Read)
			if g.full() {
				break
			}
		}
		g.seq(lattice, 1024, 128, 3)
	}
}

// Namd models 444.namd: molecular dynamics with larger per-atom records
// and pairwise force gathers.
func Namd(seed uint64, n int) trace.Trace { return materialize(seed, n, namdRun) }

func namdRun(g *gen) {
	const atoms = 50000
	rec := uint64(DataBase)
	for !g.full() {
		for i := 0; i < 2048 && !g.full(); i++ {
			a := g.src.Intn(atoms)
			b := g.src.Intn(atoms)
			g.emit(rec+uint64(a*32), trace.Read)
			g.emit(rec+uint64(b*32), trace.Read)
			g.emit(rec+uint64(a*32+16), trace.Write)
		}
	}
}

// Sjeng models 458.sjeng: chess search — a giant transposition table hit
// randomly, plus small hot board/history arrays.
func Sjeng(seed uint64, n int) trace.Trace { return materialize(seed, n, sjengRun) }

func sjengRun(g *gen) {
	const ttEntries = 1 << 20 // 16 MiB transposition table
	tt := uint64(HeapBase)
	board := uint64(DataBase)
	for !g.full() {
		g.emit(tt+uint64(g.src.Intn(ttEntries)*16), trace.Read) // probe
		for i := 0; i < 8 && !g.full(); i++ {                   // move gen on board
			g.emit(board+uint64(g.src.Intn(128)*4), trace.Read)
		}
		g.emit(board+uint64(512+g.src.Intn(64)*4), trace.Write) // history update
		if g.src.Intn(4) == 0 {
			g.emit(tt+uint64(g.src.Intn(ttEntries)*16), trace.Write) // store
		}
	}
}

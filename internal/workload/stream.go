package workload

import (
	"context"
	"errors"
	"io"
	"sync"

	"cacheuniformity/internal/rng"
	"cacheuniformity/internal/trace"
)

// Streaming generator support.  A kernel is an imperative loop over its
// gen, so rather than rewriting 22 generators as resumable state machines
// we run the kernel in a goroutine and let the gen's flush hook hand each
// filled batch across a channel.  At most three batches are live at any
// moment (one being filled, one in the channel, one being drained), so a
// stream of any length occupies O(batch) memory.
//
// Every pump is bound to a context: cancellation wakes a pump blocked
// mid-send exactly like an explicit Close does, so a cancelled grid run
// leaks no goroutines no matter where in the stream each pump was.

// errStreamClosed aborts an abandoned kernel: flush panics with it when
// the consumer closes the stream early (or its context is cancelled), and
// the pump goroutine recovers it on the way out.
var errStreamClosed = errors.New("workload: stream closed")

// genStream adapts a running kernel to trace.BatchReader.
type genStream struct {
	ctx  context.Context
	ch   chan trace.Trace
	stop chan struct{}
	once sync.Once
	pend trace.Trace // remainder of the batch being drained
	err  error       // sticky ReadBatch error (context cancellation)
}

// newGenStream starts run in a pump goroutine emitting n accesses in
// batches of the given size (<= 0 means trace.DefaultBatch).  The pump
// stops — even when blocked mid-send — as soon as the consumer closes the
// stream or ctx is cancelled, whichever comes first.
func newGenStream(ctx context.Context, seed uint64, n, batch int, run func(*gen)) *genStream {
	if ctx == nil {
		//lint:allow ctxflow nil-ctx guard: context-free shims pass nil and get the documented non-cancellable default.
		ctx = context.Background()
	}
	if batch <= 0 {
		batch = trace.DefaultBatch
	}
	if n < 0 {
		n = 0
	}
	if batch > n && n > 0 {
		batch = n
	}
	s := &genStream{ctx: ctx, ch: make(chan trace.Trace, 1), stop: make(chan struct{})}
	done := ctx.Done()
	g := &gen{src: rng.New(seed), out: make(trace.Trace, 0, batch), max: n}
	g.flush = func(b trace.Trace) trace.Trace {
		select {
		case s.ch <- b:
			return make(trace.Trace, 0, cap(b))
		case <-s.stop:
			//lint:allow nopanic deliberate abort of an abandoned kernel; recovered by this stream's pump goroutine below.
			panic(errStreamClosed)
		case <-done:
			//lint:allow nopanic deliberate abort of an abandoned kernel; recovered by this stream's pump goroutine below.
			panic(errStreamClosed)
		}
	}
	go func() {
		defer close(s.ch)
		defer func() {
			if r := recover(); r != nil && r != errStreamClosed {
				//lint:allow nopanic re-raise of a genuine kernel panic after filtering the deliberate close signal.
				panic(r)
			}
		}()
		run(g)
		if len(g.out) > 0 {
			select {
			case s.ch <- g.out:
			case <-s.stop:
			case <-done:
			}
		}
	}()
	return s
}

// ReadBatch implements trace.BatchReader.  A cancelled context surfaces
// as the context's error (never as a silent short stream), and the error
// is sticky.
func (s *genStream) ReadBatch(dst []trace.Access) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if s.err != nil {
		return 0, s.err
	}
	for len(s.pend) == 0 {
		b, ok := <-s.ch
		if !ok {
			if err := s.ctx.Err(); err != nil {
				s.err = err
				return 0, err
			}
			s.err = io.EOF
			return 0, io.EOF
		}
		s.pend = b
	}
	n := copy(dst, s.pend)
	s.pend = s.pend[n:]
	return n, nil
}

// Close releases the pump goroutine; safe to call at any time, including
// after the stream is drained.
func (s *genStream) Close() error {
	s.once.Do(func() { close(s.stop) })
	return nil
}

// collectStream drains a kernel stream into an exactly-sized slice — the
// thin Collect wrapper behind Spec.Generate.
//
//lint:allow ctxflow Generate's contract is context-free materialization; the pump runs to completion by construction.
func collectStream(seed uint64, n int, run func(*gen)) trace.Trace {
	if n <= 0 {
		return nil
	}
	s := newGenStream(context.Background(), seed, n, 0, run)
	out := make(trace.Trace, 0, n)
	for {
		batch, ok := <-s.ch
		if !ok {
			return out
		}
		out = append(out, batch...)
	}
}

package workload

import (
	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/hier"
)

// mustCache builds a known-good cache fixture, panicking on the
// (impossible) config error.
func mustCache(cfg cache.Config) *cache.Cache {
	c, err := cache.New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// mustHier builds a known-good hierarchy fixture, panicking on the
// (impossible) config error.
func mustHier(cfg hier.Config) *hier.Hierarchy {
	h, err := hier.New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

package workload

import "cacheuniformity/internal/trace"

// The MiBench-flavoured generators (paper Figures 1, 4, 6, 7, 9-14).
// Parameter choices are annotated with the behaviour they model.

// ADPCM models the adpcm speech codec: two long streaming buffers and a
// tiny quantiser state.  The working set per iteration is a handful of
// blocks, so the baseline direct-mapped cache already hits almost always —
// the paper's Figure 4 shows 0% change for every indexing scheme.
func ADPCM(seed uint64, n int) trace.Trace { return materialize(seed, n, adpcmRun) }

func adpcmRun(g *gen) {
	const chunk = 2048
	for pos := 0; !g.full(); pos += chunk {
		in := uint64(DataBase) + uint64(pos)
		out := uint64(DataBase+0x0200_0000) + uint64(pos/4)
		for i := 0; i < chunk && !g.full(); i++ {
			g.emit(in+uint64(i), trace.Read)        // sample byte
			g.emit(uint64(TextBase)+16, trace.Read) // step-size table (hot)
			g.emit(uint64(TextBase)+48, trace.Read) // index table (hot)
			if i%4 == 3 {
				g.emit(out+uint64(i/4), trace.Write) // packed nibble out
			}
		}
	}
}

// BasicMath models basicmath's small numeric kernels: a few small arrays
// recomputed in tight loops plus call-heavy stack traffic, with two arrays
// whose 32 KiB-aligned bases collide in the baseline cache — the conflict
// the indexing schemes remove (Figure 4 shows large XOR/odd-multiplier
// wins).
func BasicMath(seed uint64, n int) trace.Trace { return materialize(seed, n, basicMathRun) }

func basicMathRun(g *gen) {
	const elems = 512 // 4 KiB of doubles
	a := uint64(DataBase)
	b := uint64(DataBase + 0x8000) // same sets as a (32 KiB apart)
	c := uint64(DataBase + 0x2000) // disjoint sets: no third conflictor
	for !g.full() {
		for i := 0; i < elems && !g.full(); i++ {
			g.emit(a+uint64(i*8), trace.Read)
			g.emit(b+uint64(i*8), trace.Read)
			g.emit(c+uint64(i*8), trace.Write)
		}
		g.stackFrames(6, 128, 4)
	}
}

// BitCount models bitcount: a 256-byte lookup table and a word stream.
// Nearly every access hits a handful of sets that never conflict — the
// canonical "uniform accesses, nothing to fix" benchmark (negligible gains
// for every scheme in Figures 4 and 6).
func BitCount(seed uint64, n int) trace.Trace { return materialize(seed, n, bitCountRun) }

func bitCountRun(g *gen) {
	table := uint64(TextBase + 0x1000)
	counter := uint64(HeapBase)
	for w := 0; !g.full(); w++ {
		word := uint64(DataBase) + uint64(w*4)%(1<<16)
		g.emit(word, trace.Read)
		for b := 0; b < 4 && !g.full(); b++ { // table lookup per byte
			g.emit(table+uint64(g.src.Intn(256)), trace.Read)
		}
		g.emit(counter, trace.Write) // accumulate the count
	}
}

// CRC models crc32: a 1 KiB table indexed by data bytes plus a long
// sequential buffer — uniform sweeps, few conflicts.
func CRC(seed uint64, n int) trace.Trace { return materialize(seed, n, crcRun) }

func crcRun(g *gen) {
	table := uint64(TextBase + 0x2000)
	crcVar := uint64(HeapBase)
	for pos := 0; !g.full(); pos++ {
		g.emit(uint64(DataBase)+uint64(pos)%(1<<20), trace.Read)
		g.emit(table+uint64(g.src.Intn(256))*4, trace.Read)
		if pos%8 == 7 {
			g.emit(crcVar, trace.Write) // running checksum spills
		}
	}
}

// Dijkstra models dijkstra's adjacency-matrix shortest path: row scans of
// a 100×100 int matrix (non-power-of-two 400-byte pitch spreads rows over
// sets) plus distance/visited arrays updated per relaxation.
func Dijkstra(seed uint64, n int) trace.Trace { return materialize(seed, n, dijkstraRun) }

func dijkstraRun(g *gen) {
	const nodes = 100
	matrix := uint64(DataBase)
	dist := uint64(HeapBase)
	visited := uint64(HeapBase + 0x1000)
	for !g.full() {
		u := g.src.Intn(nodes)
		// find-min scan over dist[].
		for v := 0; v < nodes && !g.full(); v++ {
			g.emit(dist+uint64(v*4), trace.Read)
			g.emit(visited+uint64(v), trace.Read)
		}
		// relax row u.
		for v := 0; v < nodes && !g.full(); v++ {
			g.emit(matrix+uint64((u*nodes+v)*4), trace.Read)
			if g.src.Intn(8) == 0 {
				g.emit(dist+uint64(v*4), trace.Write)
			}
		}
		g.emit(visited+uint64(u), trace.Write)
	}
}

// FFT models the MiBench fft kernel (fourierf.c), which keeps four
// separate power-of-two arrays — RealIn, ImagIn, RealOut, ImagOut — whose
// back-to-back mallocs land the In and Out arrays exactly one cache span
// (32 KiB) apart.  Under conventional indexing every butterfly's
// In[j]-read and Out[j]-write fight over the same set, so misses are
// almost purely conflict misses (Figure 4's biggest XOR win), while the
// hot stack frame and sin/cos twiddle table absorb the majority of
// accesses on a few sets — the spiky per-set histogram of Figure 1.
func FFT(seed uint64, n int) trace.Trace { return materialize(seed, n, fftRun) }

func fftRun(g *gen) {
	const points = 512 // 4 KiB per array of 8-byte floats
	const elem = 8
	realIn := uint64(DataBase)
	imagIn := uint64(DataBase + 0x1000)
	realOut := uint64(DataBase + 0x8000)  // one cache span later: same sets as realIn
	imagOut := uint64(DataBase + 0x9000)  // same sets as imagIn
	twiddle := uint64(DataBase + 0x10000) // also folds onto the low sets
	sp := uint64(StackBase - 64)          // hot frame: counters and temporaries
	for !g.full() {
		for half := 1; half < points && !g.full(); half *= 2 {
			for i := 0; i < points-half && !g.full(); i += 2 * half {
				for j := i; j < i+half && !g.full(); j++ {
					// Scalar work per butterfly lives in the hot frame.
					g.emit(sp, trace.Read)
					g.emit(sp+8, trace.Read)
					g.emit(sp+16, trace.Read)
					g.emit(sp+24, trace.Write)
					g.emit(sp+32, trace.Write)
					g.emit(sp+40, trace.Write)
					g.emit(twiddle+uint64((j%64)*elem), trace.Read)
					g.emit(twiddle+uint64((j%64)*elem+4), trace.Read)
					g.emit(realIn+uint64(j*elem), trace.Read)
					g.emit(imagIn+uint64((j+half)*elem), trace.Read)
					g.emit(realOut+uint64(j*elem), trace.Write)
					g.emit(imagOut+uint64((j+half)*elem), trace.Write)
				}
			}
		}
	}
}

// Patricia models the patricia trie benchmark: a pointer chase over heap
// nodes far larger than the cache, plus key-byte reads.  Misses are
// capacity/cold dominated and scattered, so remapping them mostly shuffles
// pain around — Figure 4 shows indexing schemes hurting patricia.
func Patricia(seed uint64, n int) trace.Trace { return materialize(seed, n, patriciaRun) }

func patriciaRun(g *gen) {
	const nodes = 40000 // ~2.5 MiB of 64-byte nodes
	c := g.newChaser(HeapBase, nodes, 64)
	for !g.full() {
		c.walk(g, 24, true)                                           // one lookup ≈ trie depth 24
		g.emit(uint64(DataBase)+uint64(g.src.Intn(4096)), trace.Read) // key byte
		if g.src.Intn(8) == 0 {                                       // occasional insert
			g.emit(uint64(HeapBase)+uint64(g.src.Intn(nodes)*64+8), trace.Write)
		}
	}
}

// QSort models qsort's recursive partitioning: linear sweeps over
// shrinking subranges plus deep stack traffic.  Sequential sweeps touch
// all sets evenly — another "already uniform" benchmark where remapping
// can only do harm (Figure 4: negative for XOR/odd-multiplier).
func QSort(seed uint64, n int) trace.Trace { return materialize(seed, n, qSortRun) }

func qSortRun(g *gen) {
	const elems = 1 << 15 // 128 KiB of 4-byte keys
	base := uint64(DataBase)
	var part func(lo, hi, depth int)
	part = func(lo, hi, depth int) {
		if g.full() || hi-lo < 16 || depth > 12 {
			return
		}
		for i := lo; i < hi && !g.full(); i++ { // partition sweep
			g.emit(base+uint64(i*4), trace.Read)
			if g.src.Intn(4) == 0 {
				g.emit(base+uint64(i*4), trace.Write)
			}
		}
		g.stackFrames(1, 96, 2)
		mid := lo + (hi-lo)/2 + g.src.Intn((hi-lo)/4+1) - (hi-lo)/8
		if mid <= lo || mid >= hi {
			mid = (lo + hi) / 2
		}
		part(lo, mid, depth+1)
		part(mid, hi, depth+1)
	}
	for !g.full() {
		part(0, elems, 0)
	}
}

// Rijndael models AES encryption: four 1 KiB T-tables in hot rotation
// (Zipf-weighted entries) plus streaming plaintext/ciphertext.  The tables
// occupy a fixed 4 KiB set range, concentrating hits, while the stream
// sweeps — remapping the stream into the table sets backfires for some
// schemes, as Figure 4's large negative rijndael entries show.
func Rijndael(seed uint64, n int) trace.Trace { return materialize(seed, n, rijndaelRun) }

func rijndaelRun(g *gen) {
	t0 := uint64(TextBase + 0x4000)
	for block := 0; !g.full(); block++ {
		in := uint64(DataBase) + uint64(block*16)%(1<<20)
		out := uint64(DataBase+0x0100_0000) + uint64(block*16)%(1<<20)
		g.emit(in, trace.Read)
		for round := 0; round < 10 && !g.full(); round++ {
			for t := 0; t < 4 && !g.full(); t++ {
				entry := uint64(g.src.Intn(256) * 4)
				g.emit(t0+uint64(t)*1024+entry, trace.Read)
			}
			g.emit(uint64(HeapBase)+uint64(round*16), trace.Read) // round key
		}
		g.emit(out, trace.Write)
	}
}

// SHA models sha1: 64-byte blocks expanded into an 80-word schedule that
// lives exactly one cache-span away from the message buffer, so schedule
// and message fight over the same sets every block — conflicts that XOR
// and odd-multiplier indexing dissolve almost entirely (Figure 4: ≈97%).
func SHA(seed uint64, n int) trace.Trace { return materialize(seed, n, shaRun) }

func shaRun(g *gen) {
	msg := uint64(DataBase)
	state := uint64(HeapBase)
	for block := 0; !g.full(); block++ {
		base := msg + uint64(block*64)%(1<<15)
		sched := base + 0x8000 // rolling W[16]: always the same sets as the block
		for w := 0; w < 80 && !g.full(); w++ {
			off := uint64((w % 16) * 4)
			g.emit(base+off, trace.Read)  // message word (on-the-fly expansion)
			g.emit(sched+off, trace.Read) // W[w-16 mod 16]
			g.emit(sched+off, trace.Write)
			g.emit(state+uint64((w%5)*4), trace.Write)
			g.emit(state+uint64(((w+1)%5)*4), trace.Read)
		}
	}
}

// Susan models the susan image-smoothing benchmark: 3-row neighbourhood
// scans over a 384-pixel-pitch image (non-power-of-two, so rows spread
// evenly) plus a small brightness LUT.  Accesses are spatially regular and
// well spread — the indexing schemes neither help nor hurt much.
func Susan(seed uint64, n int) trace.Trace { return materialize(seed, n, susanRun) }

func susanRun(g *gen) {
	const width, height = 384, 288
	img := uint64(DataBase)
	outImg := uint64(HeapBase)
	lut := uint64(TextBase + 0x8000)
	for !g.full() {
		for r := 1; r < height-1 && !g.full(); r++ {
			for c := 1; c < width-1 && !g.full(); c += 2 {
				for dr := -1; dr <= 1 && !g.full(); dr++ {
					g.emit(img+uint64((r+dr)*width+c), trace.Read)
				}
				g.emit(lut+uint64(g.src.Intn(516)), trace.Read)
				g.emit(outImg+uint64(r*width+c), trace.Write)
			}
		}
	}
}

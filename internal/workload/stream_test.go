package workload

import (
	"io"
	"runtime"
	"testing"
	"time"

	"cacheuniformity/internal/trace"
)

// TestStreamMatchesGenerate is the streaming refactor's ground truth: for
// every registered benchmark, the batched stream must yield byte-for-byte
// the sequence Generate materializes, and a second stream from the same
// seed must replay it identically.
func TestStreamMatchesGenerate(t *testing.T) {
	for _, name := range Names("") {
		spec := MustLookup(name)
		want := spec.Generate(11, 5_000)
		for pass := 0; pass < 2; pass++ {
			got, err := trace.CollectBatch(spec.Stream(11, 5_000), 0)
			if err != nil {
				t.Fatalf("%s pass %d: %v", name, pass, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s pass %d: stream yields %d accesses, Generate %d", name, pass, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s pass %d: access %d = %v, want %v", name, pass, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStreamBatchSizeInvariance checks the generator pump delivers the same
// sequence whatever buffer size the consumer reads with.
func TestStreamBatchSizeInvariance(t *testing.T) {
	spec := MustLookup("fft")
	want := spec.Generate(3, 2_000)
	for _, size := range []int{1, 7, 256, 4096, 10_000} {
		r := spec.Stream(3, 2_000)
		buf := make([]trace.Access, size)
		var got trace.Trace
		for {
			n, err := r.ReadBatch(buf)
			got = append(got, buf[:n]...)
			if n == 0 {
				if err != io.EOF {
					t.Fatalf("size %d: %v", size, err)
				}
				break
			}
		}
		if len(got) != len(want) {
			t.Fatalf("size %d: %d accesses, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: access %d differs", size, i)
			}
		}
	}
}

// TestStreamNonPositiveLength pins the degenerate lengths: an empty stream,
// not a panic or a hang.
func TestStreamNonPositiveLength(t *testing.T) {
	spec := MustLookup("qsort")
	for _, n := range []int{0, -4} {
		got, err := trace.CollectBatch(spec.Stream(1, n), 0)
		if err != nil || len(got) != 0 {
			t.Fatalf("Stream(len=%d) = %d accesses, %v", n, len(got), err)
		}
		if tr := spec.Generate(1, n); len(tr) != 0 {
			t.Fatalf("Generate(len=%d) = %d accesses", n, len(tr))
		}
	}
}

// TestStreamEarlyClose verifies an abandoned stream releases its generator
// goroutine: Close unblocks the pump, and the goroutine count returns to
// its baseline.
func TestStreamEarlyClose(t *testing.T) {
	base := runtime.NumGoroutine()
	spec := MustLookup("mcf")
	for i := 0; i < 50; i++ {
		r := spec.Stream(uint64(i+1), 1_000_000)
		buf := make([]trace.Access, 64)
		if _, err := r.ReadBatch(buf); err != nil {
			t.Fatal(err)
		}
		trace.CloseBatch(r)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestMixedBatchMatchesMixedStream checks the streaming fetch/data
// interleave against the materialized one.
func TestMixedBatchMatchesMixedStream(t *testing.T) {
	spec := MustLookup("dijkstra")
	want := MixedStream(spec, 9, 12_000, 3)
	got, err := trace.CollectBatch(MixedBatch(spec, 9, 12_000, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d accesses, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d = %v, want %v", i, got[i], want[i])
		}
	}
}

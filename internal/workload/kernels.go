// Package workload synthesises memory-reference traces whose structure
// models the MiBench and SPEC CPU2006 programs the paper measures.
//
// The paper drives its cache simulations with SimpleScalar/M-Sim running
// Alpha binaries; that toolchain and those traces are not reproducible
// here, so each benchmark is replaced by a generator that composes the
// access-pattern kernels below (sequential streams, strided sweeps,
// Zipf-weighted tables, pointer chases, 2-D array walks, stack frames)
// with parameters chosen to reflect the published memory behaviour of the
// original program: working-set size, stride structure, hot-set
// concentration, and read/write mix.  What the studied techniques react to
// — which cache sets the stream hammers and how — is carried entirely by
// this structure.  See DESIGN.md §2 for the substitution argument.
//
// All generators are deterministic functions of (seed, length).
package workload

import (
	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/rng"
	"cacheuniformity/internal/trace"
)

// Region bases spread the synthetic segments across a 32-bit space the way
// a SimpleScalar Alpha process lays out text, data, heap and stack.
const (
	TextBase  = 0x0012_0000
	DataBase  = 0x1000_0000
	HeapBase  = 0x2000_0000
	StackBase = 0x7FFF_0000
)

// gen is the builder shared by all kernels: it accumulates accesses and
// owns the random source.  In materialized mode (newGen) out holds the
// whole trace; in streaming mode a flush hook hands off each filled batch
// so only one batch is ever resident (see stream.go).  Either way the
// kernels run unchanged and consume the rng in the same order, so a
// stream and a materialized trace from the same seed are identical.
type gen struct {
	src     *rng.Source
	out     trace.Trace
	max     int
	emitted int
	// flush, when set, is called with the full batch and returns the
	// buffer to continue emitting into.
	flush func(trace.Trace) trace.Trace
}

func newGen(seed uint64, n int) *gen {
	if n < 0 {
		n = 0
	}
	return &gen{src: rng.New(seed), out: make(trace.Trace, 0, n), max: n}
}

func (g *gen) full() bool { return g.emitted >= g.max }

func (g *gen) emit(a uint64, k trace.Kind) {
	if g.full() {
		return
	}
	g.out = append(g.out, trace.Access{Addr: addr.Addr(a), Kind: k})
	g.emitted++
	if g.flush != nil && len(g.out) == cap(g.out) {
		g.out = g.flush(g.out)
	}
}

// materialize runs a kernel to completion into an n-capacity slice.
func materialize(seed uint64, n int, run func(*gen)) trace.Trace {
	g := newGen(seed, n)
	run(g)
	return g.out
}

// seq emits a sequential element-wise scan of count elements of elemSize
// bytes starting at base; writeEvery > 0 makes every writeEvery-th access
// a store.
func (g *gen) seq(base uint64, count, elemSize int, writeEvery int) {
	for i := 0; i < count && !g.full(); i++ {
		k := trace.Read
		if writeEvery > 0 && i%writeEvery == writeEvery-1 {
			k = trace.Write
		}
		g.emit(base+uint64(i*elemSize), k)
	}
}

// strided emits count accesses with a fixed byte stride — the kernel
// behind FFT butterflies and column-major matrix walks.  Power-of-two
// strides are the classic conflict generator.
func (g *gen) strided(base uint64, count int, stride uint64, k trace.Kind) {
	for i := 0; i < count && !g.full(); i++ {
		g.emit(base+uint64(i)*stride, k)
	}
}

// zipfTable emits count lookups into a table of entries elements,
// popularity-ranked by a Zipf(s) law over a fixed random permutation —
// hash tables, sboxes, symbol tables.
func (g *gen) zipfTable(base uint64, entries, elemSize, count int, s float64, writeFrac float64) {
	z := rng.NewZipf(g.src, s, entries)
	perm := g.src.Perm(entries) // rank → slot, so hot entries scatter
	for i := 0; i < count && !g.full(); i++ {
		slot := perm[z.Next()]
		k := trace.Read
		if writeFrac > 0 && g.src.Float64() < writeFrac {
			k = trace.Write
		}
		g.emit(base+uint64(slot*elemSize), k)
	}
}

// chaser is a persistent pointer-chase state: a random permutation over
// nodes (built once — it is the dominant setup cost for the big-graph
// workloads) walked incrementally across calls.
type chaser struct {
	base     uint64
	nodeSize int
	next     []int
	cur      int
}

// newChaser builds the chase graph: a random permutation (union of
// cycles), so the walk never gets stuck and revisits have the reuse
// distance of the cycle length.
func (g *gen) newChaser(base uint64, nodes, nodeSize int) *chaser {
	return &chaser{base: base, nodeSize: nodeSize, next: g.src.Perm(nodes)}
}

// walk emits count chase steps.  Each step reads the node header (the
// "next" pointer) and optionally a payload word.
func (c *chaser) walk(g *gen, count int, payload bool) {
	for i := 0; i < count && !g.full(); i++ {
		g.emit(c.base+uint64(c.cur*c.nodeSize), trace.Read)
		if payload && !g.full() {
			g.emit(c.base+uint64(c.cur*c.nodeSize+8), trace.Read)
		}
		c.cur = c.next[c.cur]
	}
}

// chase emits a one-shot pointer chase (see chaser for repeated walks).
func (g *gen) chase(base uint64, nodes, nodeSize, count int, payload bool) {
	g.newChaser(base, nodes, nodeSize).walk(g, count, payload)
}

// matrix2D walks an rows×cols matrix of elemSize-byte elements.  rowMajor
// selects traversal order; column-major on power-of-two row pitches is a
// classic set-conflict pattern.
func (g *gen) matrix2D(base uint64, rows, cols, elemSize int, rowMajor bool, k trace.Kind) {
	pitch := uint64(cols * elemSize)
	if rowMajor {
		for r := 0; r < rows && !g.full(); r++ {
			for c := 0; c < cols && !g.full(); c++ {
				g.emit(base+uint64(r)*pitch+uint64(c*elemSize), k)
			}
		}
		return
	}
	for c := 0; c < cols && !g.full(); c++ {
		for r := 0; r < rows && !g.full(); r++ {
			g.emit(base+uint64(r)*pitch+uint64(c*elemSize), k)
		}
	}
}

// stackFrames models call/return bursts: descending frame pushes, local
// touches, then pops.  depth frames of frameSize bytes below StackBase.
func (g *gen) stackFrames(depth, frameSize, localTouches int) {
	for d := 0; d < depth && !g.full(); d++ {
		frame := uint64(StackBase) - uint64((d+1)*frameSize)
		g.emit(frame, trace.Write) // push return address
		for t := 0; t < localTouches && !g.full(); t++ {
			off := uint64(g.src.Intn(frameSize/8) * 8)
			k := trace.Read
			if g.src.Bool() {
				k = trace.Write
			}
			g.emit(frame+off, k)
		}
	}
	for d := depth - 1; d >= 0 && !g.full(); d-- {
		frame := uint64(StackBase) - uint64((d+1)*frameSize)
		g.emit(frame, trace.Read) // pop
	}
}

// butterfly emits one radix-2 FFT stage over n complex elements (elemSize
// bytes each) with the given half-distance: pairs (i, i+half) are read and
// written — power-of-two strides throughout, the source of Figure 1's
// extreme non-uniformity.
func (g *gen) butterfly(base uint64, n, elemSize, half int) {
	for i := 0; i < n-half && !g.full(); i += 2 * half {
		for j := i; j < i+half && !g.full(); j++ {
			a := base + uint64(j*elemSize)
			b := base + uint64((j+half)*elemSize)
			g.emit(a, trace.Read)
			g.emit(b, trace.Read)
			g.emit(a, trace.Write)
			g.emit(b, trace.Write)
		}
	}
}

// gather emits count accesses at uniformly random element offsets within
// a region of elements entries — cold, unstructured traffic.
func (g *gen) gather(base uint64, elements, elemSize, count int, writeFrac float64) {
	for i := 0; i < count && !g.full(); i++ {
		k := trace.Read
		if writeFrac > 0 && g.src.Float64() < writeFrac {
			k = trace.Write
		}
		g.emit(base+uint64(g.src.Intn(elements)*elemSize), k)
	}
}

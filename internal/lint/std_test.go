package lint_test

import (
	"testing"

	"cacheuniformity/internal/lint"
	"cacheuniformity/internal/lint/linttest"
)

func TestShadow(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Shadow,
		"example.com/std/shadow",
	)
}

func TestNilness(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Nilness,
		"example.com/std/nilness",
	)
}

func TestUnusedwrite(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Unusedwrite,
		"example.com/std/unusedwrite",
	)
}

package lint_test

import (
	"testing"

	"cacheuniformity/internal/lint"
	"cacheuniformity/internal/lint/linttest"
)

func TestDetrand(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Detrand,
		"example.com/internal/cache", // simulation package: flagged + allowed cases
		"example.com/internal/rng",   // the one package randomness may live in
		"example.com/report",         // outside the simulation packages entirely
	)
}

package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"cacheuniformity/internal/lint/cfg"
)

// buildFunc parses src (a file with one function named f) and builds its
// CFG.
func buildFunc(t *testing.T, src string) *cfg.CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return cfg.New(fd.Body, cfg.Options{})
		}
	}
	t.Fatal("no function f in source")
	return nil
}

func TestTerminatesStraightLine(t *testing.T) {
	g := buildFunc(t, `package p
func f() int {
	x := 1
	x++
	return x
}`)
	if !g.Terminates() {
		t.Fatal("straight-line function must terminate")
	}
	if len(g.Entry.Nodes) == 0 {
		t.Fatal("entry block should carry the statements")
	}
}

func TestInfiniteLoopDoesNotTerminate(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	for {
		_ = 1
	}
}`)
	if g.Terminates() {
		t.Fatal("for{} with no exit must not terminate")
	}
}

func TestInfiniteLoopWithBreakTerminates(t *testing.T) {
	g := buildFunc(t, `package p
func f(done bool) {
	for {
		if done {
			break
		}
	}
}`)
	if !g.Terminates() {
		t.Fatal("break gives the loop an exit path")
	}
}

func TestInfiniteLoopWithReturnInSelectTerminates(t *testing.T) {
	g := buildFunc(t, `package p
func f(done chan struct{}, work chan int) {
	for {
		select {
		case <-done:
			return
		case v := <-work:
			_ = v
		}
	}
}`)
	if !g.Terminates() {
		t.Fatal("ctx.Done-style select return is a termination path")
	}
}

func TestEmptySelectDoesNotTerminate(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	select {}
}`)
	if g.Terminates() {
		t.Fatal("select{} blocks forever")
	}
}

func TestRangeOverChannelTerminates(t *testing.T) {
	g := buildFunc(t, `package p
func f(ch chan int) {
	for v := range ch {
		_ = v
	}
}`)
	if !g.Terminates() {
		t.Fatal("a channel range ends when the channel closes")
	}
}

func TestPanicOnlyStillTerminates(t *testing.T) {
	// Terminates means "does not run forever": a goroutine that panics
	// unwinds and is gone, so goleak must not flag it.
	g := buildFunc(t, `package p
func f() {
	for {
		panic("boom")
	}
}`)
	if !g.Terminates() {
		t.Fatal("panic unwinds; the function does not run forever")
	}
}

func TestLabeledBreakFromNestedLoop(t *testing.T) {
	g := buildFunc(t, `package p
func f(stop bool) {
outer:
	for {
		for {
			if stop {
				break outer
			}
		}
	}
}`)
	if !g.Terminates() {
		t.Fatal("labeled break must reach the outer join")
	}
}

func TestGotoLoopDoesNotTerminate(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
top:
	_ = 1
	goto top
}`)
	if g.Terminates() {
		t.Fatal("goto loop with no exit must not terminate")
	}
}

func TestBranchesMapIfArms(t *testing.T) {
	g := buildFunc(t, `package p
func f(ok bool) int {
	if ok {
		return 1
	}
	return 2
}`)
	if len(g.Branches) != 1 {
		t.Fatalf("want 1 branch record, got %d", len(g.Branches))
	}
	for _, br := range g.Branches {
		if br.Then == nil || br.Else == nil || br.Cond == nil {
			t.Fatal("branch record incomplete")
		}
		if br.Then == br.Else {
			t.Fatal("then and else arms must differ when reachable code differs")
		}
	}
}

func TestSwitchWithoutDefaultReachesJoin(t *testing.T) {
	g := buildFunc(t, `package p
func f(n int) {
	for {
		switch n {
		case 1:
			return
		}
	}
}`)
	if !g.Terminates() {
		t.Fatal("the case-1 return is a termination path")
	}
}

func TestDefersRecorded(t *testing.T) {
	g := buildFunc(t, `package p
func f() {
	defer println("a")
	if true {
		defer println("b")
	}
}`)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 defers, got %d", len(g.Defers))
	}
}

func TestOsExitEndsBlock(t *testing.T) {
	g := buildFunc(t, `package p
import "os"
func f() {
	for {
		os.Exit(1)
	}
}`)
	if !g.Terminates() {
		t.Fatal("os.Exit terminates the process")
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	g := buildFunc(t, `package p
func f(ok bool) {
	if ok {
		_ = 1
	} else {
		_ = 2
	}
	_ = 3
}`)
	rpo := g.ReversePostorder()
	if len(rpo) == 0 || rpo[0] != g.Entry {
		t.Fatal("reverse postorder must start at the entry block")
	}
	seen := map[*cfg.Block]bool{}
	for _, b := range rpo {
		seen[b] = true
	}
	if !seen[g.Exit] {
		t.Fatal("exit must be reachable here")
	}
}

func TestForwardDataflowReachingAssignment(t *testing.T) {
	// A tiny must-pass dataflow: count the minimum number of statements
	// executed before exit; the lattice is min over paths.
	g := buildFunc(t, `package p
func f(ok bool) {
	_ = 0
	if ok {
		_ = 1
		_ = 2
	}
	_ = 3
}`)
	in := cfg.Forward(g, cfg.Lattice[int]{
		Bottom: func() int { return 0 },
		Join:   func(a, b int) int { return min(a, b) },
		Equal:  func(a, b int) bool { return a == b },
		Transfer: func(b *cfg.Block, n int) int {
			return n + len(b.Nodes)
		},
	})
	// Shortest path to exit: entry(_=0, cond) -> join(_=3) = 3 nodes.
	if got := in[g.Exit]; got != 3 {
		t.Fatalf("min statements into exit = %d, want 3", got)
	}
}

package cfg

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the order a forward dataflow should visit them so most
// facts stabilise in one pass over reducible graphs.
func (g *CFG) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachable reports whether dst is reachable from src (src counts as
// reaching itself).
func (g *CFG) Reachable(src, dst *Block) bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{src}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == dst {
			return true
		}
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

// Terminates reports whether some execution of the function ends: the
// exit block is reachable, or a block ended by a non-returning call
// (panic, os.Exit — a terminator with no successors other than the
// synthetic exit itself) is.  A function for which this is false can
// only run forever — the fact goleak keys on.
func (g *CFG) Terminates() bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		if b == g.Exit || b.Unwinds {
			// The exit block is a normal return; an unwinding block is a
			// panic or os.Exit — either way the goroutine does not run
			// forever.  (A successor-less block withOUT the Unwinds mark
			// is a permanent blocker — select{} — and does not count.)
			return true
		}
		stack = append(stack, b.Succs...)
	}
	return false
}

// Lattice describes the fact domain of one forward dataflow problem.
// Facts must be immutable values: Transfer returns a new fact rather
// than mutating its input, and Join must be commutative and idempotent.
type Lattice[T any] struct {
	// Bottom is the "no information yet" entry fact for the entry block.
	Bottom func() T
	// Join merges facts at a control-flow merge.
	Join func(a, b T) T
	// Equal detects the fixpoint.
	Equal func(a, b T) bool
	// Transfer folds one block: given the fact at block entry, produce
	// the fact at block exit.  It must be deterministic.
	Transfer func(b *Block, in T) T
	// Edge, when non-nil, refines the fact flowing along the edge
	// from -> to before it joins to's entry fact (path sensitivity:
	// closecheck kills obligations entering an `if err != nil` arm).
	Edge func(from, to *Block, out T) T
}

// Forward iterates the problem to fixpoint over the reachable blocks and
// returns each block's ENTRY fact.  The worklist starts in reverse
// postorder, so one pass usually suffices; a bounded iteration count
// guards against a non-converging Transfer (the bound is generous:
// blocks × 4 + 64 visits).
func Forward[T any](g *CFG, l Lattice[T]) map[*Block]T {
	rpo := g.ReversePostorder()
	in := make(map[*Block]T, len(rpo))
	inSet := make(map[*Block]bool, len(rpo))
	in[g.Entry] = l.Bottom()
	inSet[g.Entry] = true

	budget := len(rpo)*4 + 64
	for changed := true; changed && budget > 0; {
		changed = false
		for _, b := range rpo {
			if !inSet[b] {
				continue
			}
			budget--
			out := l.Transfer(b, in[b])
			for _, s := range b.Succs {
				flow := out
				if l.Edge != nil {
					flow = l.Edge(b, s, out)
				}
				if !inSet[s] {
					in[s] = flow
					inSet[s] = true
					changed = true
				} else if merged := l.Join(in[s], flow); !l.Equal(merged, in[s]) {
					in[s] = merged
					changed = true
				}
			}
		}
	}
	return in
}

// Package cfg builds per-function control-flow graphs over the typed AST
// for the simlint analyzers, in the same zero-dependency discipline as
// internal/lint/analysis: the build environment has no module proxy, so
// golang.org/x/tools/go/cfg cannot be vendored, and the subset below —
// basic blocks of statements with successor edges, built from a
// function's body — is shaped after the upstream API closely enough that
// an analyzer written against it ports by changing the import path.
//
// The graph is intraprocedural and syntactic: one Block per straight-line
// statement run, with edges for every structured control transfer (if,
// for, range, switch, type switch, select, break/continue/goto with and
// without labels, fallthrough, return).  Calls that provably do not
// return — panic, os.Exit, log.Fatal*, runtime.Goexit — end their block
// with no successors, so "the exit block is reachable" means "some
// execution of this function terminates normally", and "no terminating
// block is reachable" means the function can only run forever.
//
// Two extras the upstream package does not carry, both load-bearing for
// the analyzers in internal/lint:
//
//   - Branches maps each *ast.IfStmt to its then/else entry blocks, so a
//     path-sensitive analyzer (closecheck's `if err != nil` handling) can
//     kill facts along one arm without re-deriving branch structure;
//   - Defers lists the function's defer statements in source order, so
//     lock- and closer-tracking analyzers can fold `defer mu.Unlock()` /
//     `defer f.Close()` into their exit obligations.
package cfg

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks holds every block, entry first; unreachable blocks (code
	// after a return, say) are present but excluded from ReversePostorder.
	Blocks []*Block
	// Entry is the function's first block; Exit is the single synthetic
	// block every normal return (and the fall-off-the-end path) reaches.
	Entry, Exit *Block
	// Branches gives each if statement's then- and else-arm entry blocks
	// (Else is the join block when the statement has no else arm).
	Branches map[*ast.IfStmt]Branch
	// Defers lists the function's defer statements in source order,
	// including those in nested blocks (but not in nested function
	// literals, which get their own CFGs).
	Defers []*ast.DeferStmt
}

// Branch is the pair of successor blocks of one if statement.
type Branch struct {
	// Cond is the if condition, after init-statement evaluation.
	Cond ast.Expr
	// Then is the block entered when Cond holds; Else when it does not.
	Then, Else *Block
}

// Block is one basic block: a maximal run of nodes with no internal
// control transfer.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes are the block's statements and control expressions in
	// execution order.  Control statements contribute their evaluated
	// parts: an if contributes its condition, a switch its tag, a range
	// its operand; bodies live in successor blocks.
	Nodes []ast.Node
	// Succs are the possible next blocks.  Empty for the exit block, for
	// blocks ended by a non-returning call (panic, os.Exit), and for
	// permanently blocking statements (an empty select).
	Succs []*Block
	// Kind labels the block's role for debugging ("entry", "if.then",
	// "for.body", "exit", ...).
	Kind string
	// Unwinds marks a block ended by a non-returning call: panic unwinds
	// the goroutine, os.Exit terminates the process.  Distinguishes "the
	// function ends here abnormally" from "the function blocks forever
	// here" (select{}), which also has no successors.
	Unwinds bool
}

// Pos returns the position of the block's first node (or token.NoPos for
// synthetic blocks).
func (b *Block) Pos() token.Pos {
	if len(b.Nodes) == 0 {
		return token.NoPos
	}
	return b.Nodes[0].Pos()
}

// builder carries the construction state.
type builder struct {
	cfg *CFG
	// current is the block under construction; nil after a terminating
	// statement until the next statement starts a fresh (unreachable)
	// block.
	current *Block
	// breakTo / continueTo are the innermost unlabeled targets.
	breakTo, continueTo *Block
	// labels maps label names to their break/continue targets and, for
	// gotos, the labeled statement's entry block.
	labels map[string]*labelInfo
	// gotos holds forward gotos to patch once their label's block exists.
	gotos []pendingGoto
	// labeledStmt carries a label name from its LabeledStmt to the
	// loop/switch/select it labels, so `break L` / `continue L` resolve.
	labeledStmt string
	// noReturn reports calls that never return control.
	noReturn func(*ast.CallExpr) bool
}

type labelInfo struct {
	breakTo    *Block
	continueTo *Block
	entry      *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// Options configures New.
type Options struct {
	// NoReturn, when non-nil, reports whether a call never returns
	// control to the caller (beyond the built-in panic/os.Exit set).
	NoReturn func(*ast.CallExpr) bool
}

// New builds the CFG of a function body.  The body may be nil (an
// external or assembly function), in which case the graph is just
// entry -> exit.
func New(body *ast.BlockStmt, opts Options) *CFG {
	g := &CFG{Branches: map[*ast.IfStmt]Branch{}}
	b := &builder{cfg: g, noReturn: opts.NoReturn}
	b.labels = map[string]*labelInfo{}

	entry := b.newBlock("entry")
	g.Entry = entry
	g.Exit = b.newBlock("exit")
	b.current = entry

	if body != nil {
		b.stmt(body)
	}
	// Falling off the end of the body returns.
	b.jump(g.Exit)

	// Unresolved gotos (labels in dead code, or malformed input the type
	// checker tolerated) conservatively reach the exit.
	for _, pg := range b.gotos {
		if li, ok := b.labels[pg.label]; ok && li.entry != nil {
			pg.from.Succs = append(pg.from.Succs, li.entry)
		} else {
			pg.from.Succs = append(pg.from.Succs, g.Exit)
		}
	}
	return g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump ends the current block with an edge to dst (no-op after a
// terminating statement).
func (b *builder) jump(dst *Block) {
	if b.current != nil {
		b.current.Succs = append(b.current.Succs, dst)
		b.current = nil
	}
}

// startIfDead begins a fresh unreachable block when the previous
// statement terminated, so dead code still gets nodes and the walk can
// continue.
func (b *builder) startIfDead(kind string) {
	if b.current == nil {
		b.current = b.newBlock(kind)
	}
}

// add appends a node to the current block.
func (b *builder) add(n ast.Node) {
	b.startIfDead("dead")
	b.current.Nodes = append(b.current.Nodes, n)
}

// stmt extends the graph with one statement.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, inner := range s.List {
			b.stmt(inner)
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.current
		join := b.newBlock("if.join")

		then := b.newBlock("if.then")
		condBlock.Succs = append(condBlock.Succs, then)
		b.current = then
		b.stmt(s.Body)
		b.jump(join)

		var elseEntry *Block
		if s.Else != nil {
			elseEntry = b.newBlock("if.else")
			condBlock.Succs = append(condBlock.Succs, elseEntry)
			b.current = elseEntry
			b.stmt(s.Else)
			b.jump(join)
		} else {
			elseEntry = join
			condBlock.Succs = append(condBlock.Succs, join)
		}
		b.cfg.Branches[s] = Branch{Cond: s.Cond, Then: then, Else: elseEntry}
		b.current = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		b.jump(head)
		join := b.newBlock("for.join")
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
		}

		b.current = head
		if s.Cond != nil {
			b.add(s.Cond)
			head.Succs = append(head.Succs, join)
		}
		body := b.newBlock("for.body")
		head.Succs = append(head.Succs, body)

		outerBreak, outerCont := b.breakTo, b.continueTo
		b.breakTo, b.continueTo = join, post
		b.bindLabel(s, join, post)
		b.current = body
		b.stmt(s.Body)
		b.jump(post)
		b.breakTo, b.continueTo = outerBreak, outerCont

		if s.Post != nil {
			b.current = post
			b.stmt(s.Post)
			b.jump(head)
		}
		b.current = join

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock("range.head")
		b.jump(head)
		join := b.newBlock("range.join")
		body := b.newBlock("range.body")
		// A range loop can always finish (even a channel range ends when
		// the channel closes), so the head keeps an exit edge.
		head.Succs = append(head.Succs, body, join)

		outerBreak, outerCont := b.breakTo, b.continueTo
		b.breakTo, b.continueTo = join, head
		b.bindLabel(s, join, head)
		b.current = body
		if s.Key != nil || s.Value != nil {
			b.add(s) // the iteration-variable assignment
		}
		b.stmt(s.Body)
		b.jump(head)
		b.breakTo, b.continueTo = outerBreak, outerCont
		b.current = join

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		} else {
			b.startIfDead("switch.head")
		}
		b.switchClauses(s, s.Body.List, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s, s.Body.List, false)

	case *ast.SelectStmt:
		b.startIfDead("select.head")
		head := b.current
		b.current = nil
		join := b.newBlock("select.join")
		hasDefault := false
		outerBreak := b.breakTo
		b.breakTo = join
		b.bindLabel(s, join, nil)
		var clauses []*Block
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock("select.case")
			clauses = append(clauses, cb)
			b.current = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			} else {
				hasDefault = true
			}
			for _, inner := range cc.Body {
				b.stmt(inner)
			}
			b.jump(join)
		}
		b.breakTo = outerBreak
		head.Succs = append(head.Succs, clauses...)
		_ = hasDefault // a select with no ready case blocks; edges only via its clauses
		b.current = join
		// select{} with no clauses blocks forever: join is unreachable,
		// which is exactly the graph shape goleak keys on.

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.breakTo != nil {
					b.jump(li.breakTo)
					return
				}
			}
			if b.breakTo != nil {
				b.jump(b.breakTo)
			} else {
				b.jump(b.cfg.Exit) // malformed; be conservative
			}
		case token.CONTINUE:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.continueTo != nil {
					b.jump(li.continueTo)
					return
				}
			}
			if b.continueTo != nil {
				b.jump(b.continueTo)
			} else {
				b.jump(b.cfg.Exit)
			}
		case token.GOTO:
			from := b.current
			b.current = nil
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: from, label: s.Label.Name})
			}
		case token.FALLTHROUGH:
			// handled by switchClauses via the clause list; ending the
			// block here would sever the fallthrough edge.
		}

	case *ast.LabeledStmt:
		entry := b.newBlock("label." + s.Label.Name)
		b.jump(entry)
		b.current = entry
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{}
			b.labels[s.Label.Name] = li
		}
		li.entry = entry
		b.labeledStmt = s.Label.Name
		b.stmt(s.Stmt)
		b.labeledStmt = ""

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.callNoReturn(call) {
			b.current.Unwinds = true
			b.current = nil // panic/os.Exit: no successors
		}

	case *ast.AssignStmt, *ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt:
		b.add(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		b.add(s)
	}
}

// labeledStmt threads the pending label name from a LabeledStmt to the
// loop/switch/select it labels, so `break L` / `continue L` resolve.
func (b *builder) bindLabel(s ast.Stmt, breakTo, continueTo *Block) {
	if b.labeledStmt == "" {
		return
	}
	li := b.labels[b.labeledStmt]
	if li == nil {
		li = &labelInfo{}
		b.labels[b.labeledStmt] = li
	}
	li.breakTo = breakTo
	li.continueTo = continueTo
	b.labeledStmt = ""
	_ = s
}

// switchClauses wires an expression or type switch: the current block
// fans out to every clause; a missing default adds a direct edge to the
// join; fallthrough chains clause bodies.
func (b *builder) switchClauses(sw ast.Stmt, clauses []ast.Stmt, _ bool) {
	head := b.current
	b.current = nil
	join := b.newBlock("switch.join")
	outerBreak := b.breakTo
	b.breakTo = join
	b.bindLabel(sw, join, nil)

	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock("switch.case")
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.current = blocks[i]
		fallsThrough := false
		for _, inner := range cc.Body {
			if br, ok := inner.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				b.add(br)
				continue
			}
			b.stmt(inner)
		}
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(join)
		}
	}
	b.breakTo = outerBreak
	if head != nil {
		head.Succs = append(head.Succs, blocks...)
		if !hasDefault {
			head.Succs = append(head.Succs, join)
		}
	}
	b.current = join
}

// callNoReturn reports whether the call never returns control: the
// builtin panic, os.Exit, log.Fatal*, runtime.Goexit, or whatever the
// Options hook adds.
func (b *builder) callNoReturn(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			switch pkg.Name + "." + fun.Sel.Name {
			case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
	}
	if b.noReturn != nil {
		return b.noReturn(call)
	}
	return false
}

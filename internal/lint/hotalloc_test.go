package lint_test

import (
	"testing"

	"cacheuniformity/internal/lint"
	"cacheuniformity/internal/lint/linttest"
)

func TestHotalloc(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Hotalloc,
		"example.com/internal/hot",
	)
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"cacheuniformity/internal/lint/analysis"
	"cacheuniformity/internal/lint/cfg"
)

// This file holds the shared plumbing of the CFG-based analyzer pack
// (lockcheck, goleak, httpresp, closecheck): function enumeration, graph
// construction, and the expression-path naming that gives locks and
// closers a stable identity inside one function.

// funcUnit is one analyzable function: a declaration or a literal, with
// its body and lazily built CFG.
type funcUnit struct {
	// Decl is non-nil for declared functions; Lit for function literals.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	// Type is the syntactic signature (receiver excluded).
	Type *ast.FuncType
}

// graph builds the unit's CFG (nil body yields the trivial graph).
func (u funcUnit) graph() *cfg.CFG {
	return cfg.New(u.Body, cfg.Options{})
}

// name renders a diagnostic-friendly function name.
func (u funcUnit) name() string {
	if u.Decl != nil {
		return u.Decl.Name.Name
	}
	return "function literal"
}

// forEachFunc calls fn for every function declaration and function
// literal in the package, outermost first.  Literal bodies are not
// revisited as part of their enclosing function: each unit is analyzed
// on its own graph.
func forEachFunc(pass *analysis.Pass, fn func(u funcUnit)) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(funcUnit{Decl: n, Body: n.Body, Type: n.Type})
				}
			case *ast.FuncLit:
				fn(funcUnit{Lit: n, Body: n.Body, Type: n.Type})
			}
			return true
		})
	}
}

// exprPath renders a lock or closer operand as a stable dotted path
// ("s.mu", "t.state.lock") rooted at a named object, or "" when the
// expression is anything fancier (an index, a call result, a map load) —
// those have no per-function identity worth tracking.
func exprPath(pass *analysis.Pass, e ast.Expr) string {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return ""
			}
			parts = append(parts, x.Name)
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, ".")
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// namedOrPointee unwraps one level of pointer and returns the named type
// beneath, or nil.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (or its pointee) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOrPointee(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// resultsContainError reports whether any result of the call's signature
// is the error type.
func resultsContainError(pass *analysis.Pass, call *ast.CallExpr) bool {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// ioCloser is the io.Closer interface, reconstructed from the universe
// so no import of the real package is needed at analysis time: one
// method, Close() error.
var ioCloser = types.NewInterfaceType([]*types.Func{
	types.NewFunc(0, nil, "Close",
		types.NewSignatureType(nil, nil, nil, nil,
			types.NewTuple(types.NewVar(0, nil, "", errorType)), false)),
}, nil).Complete()

// implementsCloser reports whether t implements io.Closer.
func implementsCloser(t types.Type) bool {
	return types.Implements(t, ioCloser)
}

// methodCall matches a call of the form <recv>.<method>(...) and returns
// the receiver expression; ok is false for plain function calls.
func methodCall(call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// syncLockOp classifies a call as one of the sync lock operations on a
// sync.Mutex or sync.RWMutex receiver.  mode is "w" for Lock/Unlock and
// "r" for RLock/RUnlock; acquire is true for Lock/RLock.
func syncLockOp(pass *analysis.Pass, call *ast.CallExpr) (recv ast.Expr, mode string, acquire, ok bool) {
	recv, method, isMethod := methodCall(call)
	if !isMethod {
		return nil, "", false, false
	}
	switch method {
	case "Lock", "Unlock":
		mode = "w"
	case "RLock", "RUnlock":
		mode = "r"
	default:
		return nil, "", false, false
	}
	t := pass.TypesInfo.TypeOf(recv)
	if t == nil {
		return nil, "", false, false
	}
	if !isNamedType(t, "sync", "Mutex") && !isNamedType(t, "sync", "RWMutex") {
		return nil, "", false, false
	}
	return recv, mode, method == "Lock" || method == "RLock", true
}

// funcBodyFor resolves the body of the function a `go` statement starts,
// when it is statically visible: a function literal, or a declared
// function/method of this package.  nil means "cannot see it" — the
// caller must stay silent, not guess.
func funcBodyFor(pass *analysis.Pass, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() != pass.Pkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.TypesInfo.Defs[fd.Name] == fn {
				return fd.Body
			}
		}
	}
	return nil
}

package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"cacheuniformity/internal/lint"
	"cacheuniformity/internal/lint/load"
)

// moduleRoot walks up from the test's working directory to the directory
// holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

// TestRepoIsLintClean runs the full analyzer suite over this repository's
// own packages — the same gate `make lint` applies — so an ordinary
// `go test ./...` catches a new violation (or an unjustified //lint:allow)
// without anyone remembering to run the linter.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	pkgs, err := load.Module(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("module load returned no packages")
	}
	findings, err := lint.Run(pkgs, lint.Suite())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("%d finding(s); fix the code or add a justified //lint:allow (see DESIGN.md § Enforced invariants)", len(findings))
	}
}

package lint

import (
	"go/ast"

	"cacheuniformity/internal/lint/analysis"
)

// Goleak demands a statically visible termination path for every `go`
// statement whose function body the analyzer can see (a function
// literal, or a function/method declared in the same package).  The
// goroutine's control-flow graph must be able to end: a reachable
// return (the exit block), a reachable panic/os.Exit, or simply falling
// off the end.  The accepted idioms all produce such a path naturally —
//
//   - a `select` with a `case <-ctx.Done(): return` (or any returning
//     case) inside the loop;
//   - `for v := range ch` (a channel range ends when the channel is
//     closed);
//   - a loop with a reachable `break` or `return`;
//   - a finite body that just runs to completion (wg.Done via defer).
//
// What cannot pass is a goroutine that can only run forever: `for {}`
// with no exit, `for { v := <-ch; ... }` with no returning branch,
// `select {}`.  Runtime leak checkers (PR 3) catch these only on the
// paths a test exercises; the graph check covers every path on every
// commit.  Goroutines started through function values or cross-package
// calls are outside the analyzer's sight and are not guessed at.
var Goleak = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "report go statements whose goroutine has no statically visible termination path",
	Run:  runGoleak,
}

func runGoleak(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := funcBodyFor(pass, g.Call)
			if body == nil {
				return true // function value or cross-package: not visible
			}
			u := funcUnit{Body: body}
			if !u.graph().Terminates() {
				pass.Reportf(g.Pos(), "goroutine can only run forever: no reachable return, break, or closed-channel loop exit; add a ctx.Done/closed-channel termination path")
			}
			return true
		})
	}
	return nil, nil
}

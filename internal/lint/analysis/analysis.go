// Package analysis is a minimal, dependency-free re-creation of the
// golang.org/x/tools/go/analysis surface the simlint suite needs.  The
// build environment this repository grows in has no module proxy access,
// so the real x/tools framework cannot be vendored; the subset below —
// an Analyzer with a Run function over a type-checked Pass that reports
// position-tagged Diagnostics — is API-compatible enough that the
// analyzers in internal/lint could be ported to the upstream framework
// by changing only import paths.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow annotations.  It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by `simlint -list`.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report.  The returned value is ignored by this framework (it
	// exists for upstream-API symmetry); errors abort the whole run.
	Run func(pass *Pass) (any, error)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet
	// Files are the package's parsed sources, comments included.
	// Test files (_test.go) are never loaded.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic.  The driver wires suppression
	// (//lint:allow) in front of the final sink.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

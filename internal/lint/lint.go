// Package lint is simlint's analyzer suite: custom analyzers that turn
// the simulator's determinism, cancellation, allocation, and
// errors-not-panics contracts — previously enforced only by convention
// and runtime gates — into static checks, plus native re-creations of
// the standard shadow/nilness/unusedwrite passes.  cmd/simlint is the
// multichecker front end; `make lint` wires it into CI.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"cacheuniformity/internal/lint/analysis"
	"cacheuniformity/internal/lint/load"
	"cacheuniformity/internal/report"
)

// Suite returns every analyzer the simlint binary runs, in a fixed
// order: the four invariant analyzers, the annotation verifier, the
// standard passes, and the CFG-based concurrency/service pack
// (internal/lint/cfg is the shared graph layer).
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Detrand,
		Ctxflow,
		Hotalloc,
		Nopanic,
		Allowcheck,
		Shadow,
		Nilness,
		Unusedwrite,
		Lockcheck,
		Goleak,
		Errflow,
		Httpresp,
		Metriclint,
		Closecheck,
	}
}

// knownAnalyzers is the name set //lint:allow may target; init breaks
// the static cycle Suite -> Allowcheck -> knownAnalyzers -> Suite.
var knownAnalyzers = map[string]bool{}

func init() {
	for _, a := range Suite() {
		knownAnalyzers[a.Name] = true
	}
}

// Finding is one diagnostic with its position resolved.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// findingJSON is the wire shape of one finding: flat, stable field
// order, no token internals.
type findingJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// FindingsJSON renders findings as a canonical JSON array — sorted
// fields, sorted findings (Run already orders them), byte-identical
// across runs for identical input, so CI diffs and dashboards can treat
// the output as content-addressable.  An empty finding set encodes as
// "[]", never "null".
func FindingsJSON(findings []Finding) ([]byte, error) {
	out := make([]findingJSON, len(findings))
	for i, f := range findings {
		out[i] = findingJSON{
			File:     f.Position.Filename,
			Line:     f.Position.Line,
			Col:      f.Position.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
	}
	return report.CanonicalJSON(out)
}

// String formats a finding the way compilers do, so editors can jump to
// it: path:line:col: [analyzer] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
}

// Run applies the analyzers to every package, honouring //lint:allow
// suppression (allowcheck itself cannot be suppressed).  Findings come
// back sorted by file, line, column, then analyzer name.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		allows := ParseAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				if a.Name != Allowcheck.Name && allows.Allowed(a.Name, pkg.Fset, d.Pos) {
					return
				}
				findings = append(findings, Finding{
					Position: pkg.Fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cacheuniformity/internal/lint/analysis"
)

// Unusedwrite is a conservative, syntax-directed subset of the x/tools
// `unusedwrite` pass (the SSA-based original cannot be imported offline;
// see README).  It reports field/element writes through a local value
// copy that is never read again — the write lands in a copy and
// vanishes, a recurring bug with by-value struct receivers — plus
// self-assignments.  Writes inside loops or to variables captured by
// closures or taken by address are skipped.
var Unusedwrite = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc:  "report writes through local value copies that are never read afterwards",
	Run:  runUnusedwrite,
}

func runUnusedwrite(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFuncWrites(pass, fd)
			}
		}
	}
	return nil, nil
}

func checkFuncWrites(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Variables that escape simple position-based reasoning: address
	// taken, captured by a closure, or named results (read by return).
	escaped := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				escaped[pass.TypesInfo.Defs[name]] = true
			}
		}
	}
	lastUse := map[types.Object]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id := rootIdent(n.X); id != nil {
					escaped[pass.TypesInfo.Uses[id]] = true
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
				return true
			})
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && n.End() > lastUse[obj] {
				lastUse[obj] = n.End()
			}
		}
		return true
	})

	var loops []ast.Node
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= pos && pos <= l.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range n.Lhs {
				// Self-assignment x = x is always a lost write.
				if i < len(n.Rhs) && sameIdent(pass, lhs, n.Rhs[i]) {
					pass.Reportf(n.Pos(), "self-assignment of %s", exprIdent(lhs).Name)
					continue
				}
				checkCopyWrite(pass, fd, lhs, n.End(), escaped, lastUse, inLoop)
			}
		}
		return true
	})
}

// checkCopyWrite flags `v.f = ...` / `v[i] = ...` where v is a local
// value copy never read after the write.
func checkCopyWrite(pass *analysis.Pass, fd *ast.FuncDecl, lhs ast.Expr, writeEnd token.Pos,
	escaped map[types.Object]bool, lastUse map[types.Object]token.Pos, inLoop func(token.Pos) bool) {
	var base ast.Expr
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		base = l.X
	case *ast.IndexExpr:
		base = l.X
	default:
		return
	}
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || obj.IsField() || escaped[obj] {
		return
	}
	// Local to this function (parameters count: writing through a
	// by-value parameter copy is the classic case).
	if obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
		return
	}
	// Value copies only: through a pointer, slice, or map the write is
	// visible to the caller.
	switch obj.Type().Underlying().(type) {
	case *types.Struct, *types.Array:
	default:
		return
	}
	if inLoop(id.Pos()) {
		return // a later iteration may read an earlier-positioned use
	}
	if lastUse[obj] > writeEnd {
		return
	}
	pass.Reportf(lhs.Pos(), "unused write: %s is a local copy that is never read after this write",
		id.Name)
}

func exprIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// sameIdent reports whether both expressions are the same plain variable.
func sameIdent(pass *analysis.Pass, a, b ast.Expr) bool {
	ia, ib := exprIdent(a), exprIdent(b)
	if ia == nil || ib == nil || ia.Name == "_" {
		return false
	}
	oa, ok := pass.TypesInfo.Uses[ia].(*types.Var)
	return ok && types.Object(oa) == pass.TypesInfo.Uses[ib]
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cacheuniformity/internal/lint/analysis"
)

// Hotalloc is the static complement of the 200k-allocation benchmark
// gate: functions marked //lint:hotpath (the batch replay loops and
// stream combinators that run once per simulated access batch) must not
// contain constructs that allocate per call — the benchmark gate catches
// a regression's magnitude, this analyzer points at the line.
var Hotalloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "in //lint:hotpath functions, forbid escaping composite literals, appends to " +
		"non-parameter slices, capturing closures, interface boxing, and fmt/log calls",
	Run: runHotalloc,
}

func runHotalloc(pass *analysis.Pass) (any, error) {
	for _, fd := range hotpathFuncs(pass.Files) {
		if fd.Body != nil {
			checkHotFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	params := paramObjects(pass, fd)
	reported := map[ast.Node]bool{}
	// Function-literal ranges: returns inside a closure answer to the
	// literal's signature, not fd's, so the return-boxing check skips them.
	var lits []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, fl)
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, fl := range lits {
			if fl.Pos() <= pos && pos <= fl.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op.String() == "&" {
				reported[cl] = true
				pass.Reportf(n.Pos(), "hot path: &composite literal allocates on every call")
			}
		case *ast.CompositeLit:
			if reported[n] {
				return true
			}
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "hot path: slice/map literal allocates on every call")
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, params)
		case *ast.FuncLit:
			if capturesOuter(pass, n, fd) {
				pass.Reportf(n.Pos(), "hot path: closure captures enclosing variables and allocates")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					checkBoxing(pass, pass.TypesInfo.TypeOf(lhs), n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			if inLit(n.Pos()) {
				return true
			}
			results := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature).Results()
			if len(n.Results) == results.Len() {
				for i, r := range n.Results {
					checkBoxing(pass, results.At(i).Type(), r)
				}
			}
		}
		return true
	})
}

// checkHotCall flags appends to non-parameter slices, fmt/log calls, and
// interface boxing at call boundaries.
func checkHotCall(pass *analysis.Pass, call *ast.CallExpr, params map[types.Object]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			// Only an append whose destination is itself a parameter is
			// exempt: the caller owns the backing array and its capacity
			// contract.  A field reached through the receiver is not a
			// parameter slice.
			dst, _ := ast.Unparen(call.Args[0]).(*ast.Ident)
			if dst == nil || !params[pass.TypesInfo.Uses[dst]] {
				pass.Reportf(call.Pos(),
					"hot path: append to a non-parameter slice can grow and allocate; "+
						"preallocate at construction and reuse")
			}
			return
		}
	}
	fn := calleeFunc(pass, call)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "log":
			pass.Reportf(call.Pos(), "hot path: %s.%s allocates (formatting boxes its operands)",
				fn.Pkg().Name(), fn.Name())
			return
		}
	}
	// Interface boxing at the call boundary: a non-pointer concrete
	// argument passed as an interface parameter heap-allocates the value.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (!sig.Variadic() && i < sig.Params().Len()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		checkBoxing(pass, pt, arg)
	}
}

// checkBoxing reports a conversion of a non-pointer concrete value to an
// interface type — the boxing allocation the paper-scale replay loops
// cannot afford once per access.
func checkBoxing(pass *analysis.Pass, target types.Type, val ast.Expr) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	vt := pass.TypesInfo.TypeOf(val)
	if vt == nil {
		return
	}
	switch vt.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: stored in the interface word, no alloc
	case *types.Basic:
		if vt.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return
		}
	}
	pass.Reportf(val.Pos(), "hot path: converting %s to %s boxes the value and allocates",
		vt.String(), target.String())
}

// paramObjects collects the parameter and receiver objects of fd.
func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

// capturesOuter reports whether a function literal references variables
// declared in the enclosing function (a capturing closure allocates its
// environment; a static closure does not).
func capturesOuter(pass *analysis.Pass, fl *ast.FuncLit, encl *ast.FuncDecl) bool {
	captures := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Declared inside the enclosing function but outside the literal.
		if obj.Pos() >= encl.Pos() && obj.Pos() <= encl.End() &&
			(obj.Pos() < fl.Pos() || obj.Pos() > fl.End()) {
			captures = true
			return false
		}
		return true
	})
	return captures
}

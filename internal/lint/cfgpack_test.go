package lint_test

import (
	"testing"

	"cacheuniformity/internal/lint"
	"cacheuniformity/internal/lint/linttest"
)

// The CFG-based pack: each golden package holds true positives next to
// the idiomatic shapes that must stay silent.

func TestLockcheck(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Lockcheck, "example.com/internal/lc")
}

func TestGoleak(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Goleak, "example.com/internal/gl")
}

func TestErrflow(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Errflow, "example.com/internal/ef")
}

func TestClosecheck(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Closecheck, "example.com/internal/cc")
}

func TestHttpresp(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Httpresp, "example.com/internal/hr")
}

func TestMetriclint(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Metriclint, "example.com/internal/ml")
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cacheuniformity/internal/lint/analysis"
)

// Nilness is a conservative, syntax-directed subset of the x/tools
// `nilness` pass (the SSA-based original cannot be imported offline; see
// README).  It reports uses that must fault on a path where a variable
// was just compared to nil: inside `if x == nil { ... }` (or the else
// branch of `if x != nil`), dereferencing, indexing, calling, or
// selecting through x panics, provided x is not reassigned in between.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "report guaranteed nil dereferences on branches where a variable is known to be nil",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			bin, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch {
			case isNilExpr(pass, bin.Y):
				id, _ = ast.Unparen(bin.X).(*ast.Ident)
			case isNilExpr(pass, bin.X):
				id, _ = ast.Unparen(bin.Y).(*ast.Ident)
			}
			if id == nil {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			var branch *ast.BlockStmt
			switch bin.Op {
			case token.EQL:
				branch = ifs.Body
			case token.NEQ:
				branch, _ = ifs.Else.(*ast.BlockStmt)
			}
			if branch != nil {
				checkNilBranch(pass, obj, branch)
			}
			return true
		})
	}
	return nil, nil
}

func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
}

// checkNilBranch reports faulting uses of obj inside a branch where obj
// is known to be nil.  Any reassignment or address-taking of obj in the
// branch abandons the check (the value is no longer known).
func checkNilBranch(pass *analysis.Pass, obj *types.Var, branch *ast.BlockStmt) {
	// Bail out if the branch invalidates what we know about obj.
	invalidated := false
	ast.Inspect(branch, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					invalidated = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					invalidated = true
				}
			}
		}
		return !invalidated
	})
	if invalidated {
		return
	}
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == obj
	}
	ast.Inspect(branch, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StarExpr:
			if usesObj(n.X) {
				pass.Reportf(n.Pos(), "nil dereference: %s is nil on this path", obj.Name())
			}
		case *ast.SelectorExpr:
			// Field access through a nil pointer faults; method calls are
			// excluded (methods may accept nil receivers).
			if usesObj(n.X) && pass.TypesInfo.Selections[n] != nil &&
				pass.TypesInfo.Selections[n].Kind() == types.FieldVal {
				if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Pointer); ok {
					pass.Reportf(n.Pos(), "nil dereference: %s is nil on this path", obj.Name())
				}
			}
		case *ast.IndexExpr:
			// Indexing a nil slice faults; nil map reads are legal, so
			// only slices are flagged.
			if usesObj(n.X) {
				if _, ok := pass.TypesInfo.TypeOf(n.X).Underlying().(*types.Slice); ok {
					pass.Reportf(n.Pos(), "index of nil slice %s on this path", obj.Name())
				}
			}
		case *ast.CallExpr:
			if usesObj(n.Fun) {
				if _, ok := pass.TypesInfo.TypeOf(n.Fun).Underlying().(*types.Signature); ok {
					pass.Reportf(n.Pos(), "call of nil function %s on this path", obj.Name())
				}
			}
		}
		return true
	})
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cacheuniformity/internal/lint/analysis"
	"cacheuniformity/internal/lint/cfg"
)

// Closecheck tracks io.Closer obligations through each function's
// control-flow graph: a local variable assigned from a call that returns
// a Closer (an *os.File, a net.Conn, a *flate.Writer, an http response
// whose Body must be drained and closed) must, on every path to the
// function's exit, either be closed (directly or via defer) or escape
// the function (returned, stored into a field or channel, captured by a
// closure, or handed to a callee that plausibly takes ownership).
//
// The analysis is path-sensitive around the acquisition's error check:
// for `f, err := os.Open(p)`, the obligation is dropped on the edge
// into the `err != nil` arm, because the Closer is nil there and the
// idiomatic early return must not be flagged.  Read-only borrows do not
// discharge the obligation — passing the value to io, bufio, fmt, or
// encoding/json helpers (io.Copy, io.ReadAll, json.NewDecoder, ...)
// leaves it with the caller, which is exactly the resp.Body pattern:
// draining the body borrows it; only Close releases it.
//
// *net/http.Response is special-cased: the obligation attaches to
// `resp.Body`, since that is what Close is called on.
var Closecheck = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "report Closer values (files, response bodies, conns, compressors) not closed on every path",
	Run:  runClosecheck,
}

// closeOb is one open obligation: where it was acquired, what the
// diagnostic should call it, and the name of the error variable bound in
// the same assignment ("" if none) — used to drop the obligation on the
// error arm of the acquisition check.  armed flips once the value has
// been used (a method call, a borrow): from then on the value is
// demonstrably live, and a later `if err != nil` testing a REUSED error
// variable no longer excuses the missing Close — the exact shape of the
// write-then-return-early compressor leak.
type closeOb struct {
	pos     token.Pos
	what    string
	errName string
	armed   bool
}

// obSet maps obligation key (the dotted path Close would be called on,
// e.g. "f" or "resp.Body") to its record.  Facts are immutable values.
type obSet map[string]closeOb

func (s obSet) with(key string, ob closeOb) obSet {
	out := make(obSet, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	out[key] = ob
	return out
}

func (s obSet) without(keys ...string) obSet {
	n := 0
	for _, k := range keys {
		if _, ok := s[k]; ok {
			n++
		}
	}
	if n == 0 {
		return s
	}
	out := make(obSet, len(s)-n)
outer:
	for k, v := range s {
		for _, drop := range keys {
			if k == drop {
				continue outer
			}
		}
		out[k] = v
	}
	return out
}

func (s obSet) equal(o obSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

func (s obSet) union(o obSet) obSet {
	if len(o) == 0 {
		return s
	}
	out := make(obSet, len(s)+len(o))
	for k, v := range s {
		out[k] = v
	}
	for k, v := range o {
		if prev, ok := out[k]; !ok {
			out[k] = v
		} else if v.armed && !prev.armed {
			prev.armed = true
			out[k] = prev
		}
	}
	return out
}

// arm marks the named obligations as used-at-least-once.
func (s obSet) arm(keys ...string) obSet {
	changed := false
	for _, k := range keys {
		if ob, ok := s[k]; ok && !ob.armed {
			changed = true
		}
	}
	if !changed {
		return s
	}
	out := make(obSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	for _, k := range keys {
		if ob, ok := out[k]; ok {
			ob.armed = true
			out[k] = ob
		}
	}
	return out
}

func runClosecheck(pass *analysis.Pass) (any, error) {
	forEachFunc(pass, func(u funcUnit) {
		checkClosersInFunc(pass, u)
	})
	return nil, nil
}

func checkClosersInFunc(pass *analysis.Pass, u funcUnit) {
	g := u.graph()

	// Path sensitivity at the acquisition's error check: for each
	// `if <err> != nil` (or `== nil`) whose condition tests a plain error
	// ident, record which arm the error is known non-nil in.  Flowing
	// into that arm kills obligations whose errName matches.
	errArm := map[*cfg.Block]string{} // block -> err ident name known non-nil on entry
	for ifStmt, br := range g.Branches {
		name, op := errNilCheck(pass, ifStmt.Cond)
		if name == "" {
			continue
		}
		if op == token.NEQ {
			if br.Then != nil {
				errArm[br.Then] = name
			}
		} else if br.Else != nil {
			errArm[br.Else] = name
		}
	}

	transfer := func(n ast.Node, f obSet) obSet {
		ast.Inspect(n, func(inner ast.Node) bool {
			switch inner := inner.(type) {
			case *ast.FuncLit:
				// A closure capturing the value takes shared ownership;
				// responsibility is no longer this function's alone.
				f = f.without(keysMentioned(f, inner.Body)...)
				return false
			case *ast.AssignStmt:
				f = transferAssign(pass, inner, f)
				return false
			case *ast.DeferStmt:
				// defer x.Close(), defer func(){ ... x.Close() ... }(),
				// or any deferred cleanup that mentions the value.
				f = f.without(keysMentioned(f, inner.Call)...)
				return false
			case *ast.ReturnStmt:
				for _, r := range inner.Results {
					f = f.without(keysMentioned(f, r)...)
				}
				return false
			case *ast.SendStmt:
				f = f.without(keysMentioned(f, inner.Value)...)
			case *ast.CallExpr:
				f = transferCall(pass, inner, f)
			case *ast.CompositeLit:
				f = f.without(keysMentioned(f, inner)...)
			}
			return true
		})
		return f
	}

	in := cfg.Forward(g, cfg.Lattice[obSet]{
		Bottom: func() obSet { return obSet{} },
		Join:   func(a, b obSet) obSet { return a.union(b) },
		Equal:  func(a, b obSet) bool { return a.equal(b) },
		Transfer: func(b *cfg.Block, f obSet) obSet {
			for _, n := range b.Nodes {
				f = transfer(n, f)
			}
			return f
		},
		Edge: func(from, to *cfg.Block, out obSet) obSet {
			errName, ok := errArm[to]
			if !ok {
				return out
			}
			var dead []string
			for k, ob := range out {
				if !ob.armed && ob.errName != "" && ob.errName == errName {
					dead = append(dead, k)
				}
			}
			return out.without(dead...)
		},
	})

	if exit, ok := in[g.Exit]; ok {
		for _, ob := range exit {
			pass.Reportf(ob.pos, "%s is not closed on every path to return; close it, defer the Close, or let it escape", ob.what)
		}
	}
}

// transferAssign handles both sides of an assignment: values copied out
// of the function's hands (stored into fields, slices, other variables)
// stop being this function's obligation, and calls returning Closers
// create new obligations bound to the assigned idents.
func transferAssign(pass *analysis.Pass, as *ast.AssignStmt, f obSet) obSet {
	// RHS first: a mention of an obligated value outside its own
	// acquisition is a copy — ownership is shared, drop the obligation.
	for _, r := range as.Rhs {
		if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
			f = transferCall(pass, call, f)
			continue
		}
		f = f.without(keysMentioned(f, r)...)
	}

	// Reassigning the obligated variable itself loses the old value; the
	// obligation as tracked no longer describes anything real.
	for _, l := range as.Lhs {
		if key := exprPath(pass, l); key != "" {
			f = f.without(key)
		}
	}

	// Acquisition: a single call RHS whose results include Closers.
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			f = acquireFromCall(pass, as, call, f)
		}
	}
	return f
}

// acquireFromCall matches the call's result tuple against the LHS idents
// and opens obligations for Closer-typed results.
func acquireFromCall(pass *analysis.Pass, as *ast.AssignStmt, call *ast.CallExpr, f obSet) obSet {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return f
	}
	res := sig.Results()
	if res.Len() != len(as.Lhs) {
		return f // value spread or mismatch; stay silent
	}

	// Find the error companion bound in the same assignment, if any.
	errName := ""
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				errName = id.Name
			}
		}
	}

	for i := 0; i < res.Len(); i++ {
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		t := res.At(i).Type()
		key, what := "", ""
		switch {
		case isNamedType(t, "net/http", "Response"):
			key, what = id.Name+".Body", "response body of "+id.Name
		case types.Identical(t, errorType):
			continue
		case implementsCloser(t):
			key, what = id.Name, id.Name+" ("+t.String()+")"
		default:
			continue
		}
		f = f.with(key, closeOb{pos: id.Pos(), what: what, errName: errName})
	}
	return f
}

// transferCall discharges obligations a call settles: a direct Close on
// the tracked path, or ownership transfer by passing the value to a
// callee outside the read-only borrow set.
func transferCall(pass *analysis.Pass, call *ast.CallExpr, f obSet) obSet {
	if recv, method, ok := methodCall(call); ok {
		if key := exprPath(pass, recv); key != "" {
			if method == "Close" {
				return f.without(key)
			}
			// Any other method on the tracked value (Write, Read, ...)
			// proves it is live: arm the obligation.
			f = f.arm(key)
		}
	}
	for _, arg := range call.Args {
		keys := keysMentioned(f, arg)
		if len(keys) == 0 {
			continue
		}
		if borrowingCallee(pass, call) {
			f = f.arm(keys...) // read/written through: live, still ours to close
			continue
		}
		f = f.without(keys...)
	}
	return f
}

// borrowingCallee reports whether the callee only borrows its reader or
// writer arguments: the io/bufio/fmt/encoding families consume bytes but
// never close.  Anything else — in particular same-package helpers —
// plausibly takes ownership, and the obligation moves with the value.
func borrowingCallee(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "io", "bufio", "fmt", "encoding/json", "encoding/binary", "compress/flate", "compress/gzip":
		return true
	}
	return false
}

// keysMentioned returns the obligation keys whose root identifier occurs
// anywhere inside n.
func keysMentioned(f obSet, n ast.Node) []string {
	if len(f) == 0 || n == nil {
		return nil
	}
	var keys []string
	ast.Inspect(n, func(inner ast.Node) bool {
		id, ok := inner.(*ast.Ident)
		if !ok {
			return true
		}
		for k := range f {
			if k == id.Name || (len(k) > len(id.Name) && k[:len(id.Name)] == id.Name && k[len(id.Name)] == '.') {
				keys = append(keys, k)
			}
		}
		return true
	})
	return keys
}

// errNilCheck matches conditions of the form `<ident> != nil` or
// `<ident> == nil` where the ident is error-typed, returning the ident
// name and the comparison operator.
func errNilCheck(pass *analysis.Pass, cond ast.Expr) (string, token.Token) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return "", token.ILLEGAL
	}
	id, nilSide := identAndNil(bin.X, bin.Y)
	if id == nil || !nilSide {
		return "", token.ILLEGAL
	}
	if t := pass.TypesInfo.TypeOf(id); t == nil || !types.Identical(t, errorType) {
		return "", token.ILLEGAL
	}
	return id.Name, bin.Op
}

func identAndNil(a, b ast.Expr) (*ast.Ident, bool) {
	x, xOK := ast.Unparen(a).(*ast.Ident)
	y, yOK := ast.Unparen(b).(*ast.Ident)
	if xOK && yOK && y.Name == "nil" {
		return x, true
	}
	if xOK && yOK && x.Name == "nil" {
		return y, true
	}
	return nil, false
}

package lint

import (
	"go/ast"

	"cacheuniformity/internal/lint/analysis"
)

// Errflow rejects silently discarded error results: a call whose result
// list includes an error, used as a bare expression statement (or the
// function of a `go` statement), throws the error away with nothing in
// the source to show the discard was considered.  An explicit blank
// assignment (`_ = f()`, `_, _ = io.Copy(...)`) is a reviewed, visible
// discard and is never flagged — the analyzer forces discards to be
// written down, not forbidden.
//
// Scope and exemptions (each is a documented judgement, not an accident):
//
//   - deferred calls are exempt: `defer f.Close()` is the idiomatic
//     release form, a deferred error cannot alter control flow, and
//     closecheck separately guarantees the Close happens;
//   - the fmt print family is exempt: its error is the destination
//     writer's, which for the in-memory writers this repo formats into
//     (strings.Builder, bytes.Buffer) is documented to be always nil,
//     and for HTTP response writers is unactionable at the call site;
//   - methods on *strings.Builder and *bytes.Buffer are exempt for the
//     same documented-nil reason.
//
// Test files never reach the analyzers (the loader skips them), so the
// "outside tests" carve-out is structural.
var Errflow = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "report discarded error results (bare call statements); discards must be explicit `_ =` assignments",
	Run:  runErrflow,
}

func runErrflow(pass *analysis.Pass) (any, error) {
	check := func(call *ast.CallExpr, how string) {
		if !resultsContainError(pass, call) {
			return
		}
		if errflowExempt(pass, call) {
			return
		}
		name := "the call"
		if fn := calleeFunc(pass, call); fn != nil {
			name = fn.Name()
		}
		pass.Reportf(call.Pos(), "%s result of %s includes an error that is silently discarded; handle it or assign it to _ explicitly", how, name)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, "the")
				}
			case *ast.GoStmt:
				check(n.Call, "the goroutine's")
			}
			return true
		})
	}
	return nil, nil
}

// errflowExempt implements the documented carve-outs.
func errflowExempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	if recv, _, ok := methodCall(call); ok {
		t := pass.TypesInfo.TypeOf(recv)
		if t != nil && (isNamedType(t, "strings", "Builder") || isNamedType(t, "bytes", "Buffer")) {
			return true
		}
	}
	return false
}

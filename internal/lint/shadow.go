package lint

import (
	"go/token"
	"go/types"

	"cacheuniformity/internal/lint/analysis"
)

// Shadow is a native re-creation of the x/tools `shadow` pass (the module
// proxy is unreachable in this build environment, so the upstream
// analyzer cannot be imported; see README).  It reports a declaration
// that shadows an identically-typed variable from an outer scope of the
// same function when the outer variable is still used after the inner
// scope closes — the classic `err :=` bug that swallows a failure.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc: "report declarations that shadow a same-typed outer variable of the same " +
		"function that is used after the shadowing scope ends",
	Run: runShadow,
}

func runShadow(pass *analysis.Pass) (any, error) {
	// The last textual use of every object, for the used-after test.
	lastUse := map[types.Object]token.Pos{}
	for id, obj := range pass.TypesInfo.Uses {
		if id.End() > lastUse[obj] {
			lastUse[obj] = id.End()
		}
	}
	for id, obj := range pass.TypesInfo.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || id.Name == "_" {
			continue
		}
		inner := v.Parent()
		if inner == nil || inner == pass.Pkg.Scope() {
			continue
		}
		outer := inner.Parent()
		if outer == nil {
			continue
		}
		_, shadowed := outer.LookupParent(v.Name(), v.Pos())
		sv, ok := shadowed.(*types.Var)
		if !ok || sv == v || sv.IsField() {
			continue
		}
		// Only function-local shadowing: a fresh local deliberately named
		// after a package variable is common and visible; the silent bug
		// is two same-typed variables a few lines apart.
		if sv.Parent() == pass.Pkg.Scope() || sv.Parent() == types.Universe {
			continue
		}
		if !types.Identical(v.Type(), sv.Type()) {
			continue
		}
		// Harmless unless the shadowed variable is read again after the
		// shadowing scope ends.
		if lastUse[sv] <= inner.End() {
			continue
		}
		pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s",
			v.Name(), pass.Fset.Position(sv.Pos()))
	}
	return nil, nil
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"cacheuniformity/internal/lint/analysis"
)

// Ctxflow enforces PR 3's cancellation contract: contexts flow down from
// main, never spring up mid-stack.  context.Background()/TODO() are
// forbidden outside main packages, tests, and annotated compatibility
// shims; and a function that receives a ctx must not call the plain
// variant of an API that has a *Ctx/*Context sibling — that silently
// drops cancellation for the whole subtree.
var Ctxflow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO outside main packages and annotated shims, " +
		"and flag ctx-holding functions that call an API's non-Ctx variant",
	Run: runCtxflow,
}

func runCtxflow(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); isPkgFunc(fn, "context", "Background") || isPkgFunc(fn, "context", "TODO") {
					pass.Reportf(n.Pos(),
						"context.%s creates a fresh root mid-stack; accept a ctx parameter "+
							"(or annotate a compatibility shim with //lint:allow ctxflow <why>)", fn.Name())
				}
			case *ast.FuncDecl:
				if n.Body != nil && receivesContext(pass, n) {
					checkDroppedCtx(pass, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

// receivesContext reports whether fd has a context.Context parameter.
func receivesContext(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// checkDroppedCtx flags calls inside fd to functions that have a
// Ctx/Context-suffixed sibling taking a context, when the call itself
// passes no context: the caller holds a ctx and drops it on the floor.
func checkDroppedCtx(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || strings.HasSuffix(fn.Name(), "Ctx") || strings.HasSuffix(fn.Name(), "Context") {
			return true
		}
		for _, arg := range call.Args {
			if t := pass.TypesInfo.TypeOf(arg); t != nil && isContextType(t) {
				return true // a context is already flowing through this call
			}
		}
		if sib := ctxSibling(fn); sib != nil {
			pass.Reportf(call.Pos(),
				"%s receives a ctx but calls %s, dropping cancellation; call %s and pass the context",
				fd.Name.Name, fn.Name(), sib.Name())
			return true
		}
		return true
	})
}

// ctxSibling finds a function next to fn named <fn>Ctx or <fn>Context
// that accepts a context.Context: for methods it searches the receiver's
// method set, for package functions the package scope.
func ctxSibling(fn *types.Func) *types.Func {
	sig := fn.Type().(*types.Signature)
	for _, suffix := range []string{"Ctx", "Context"} {
		name := fn.Name() + suffix
		var obj types.Object
		if recv := sig.Recv(); recv != nil {
			obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
		} else if fn.Pkg() != nil {
			obj = fn.Pkg().Scope().Lookup(name)
		}
		sib, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sibSig := sib.Type().(*types.Signature)
		for i := 0; i < sibSig.Params().Len(); i++ {
			if isContextType(sibSig.Params().At(i).Type()) {
				return sib
			}
		}
	}
	return nil
}

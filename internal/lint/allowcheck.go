package lint

import (
	"cacheuniformity/internal/lint/analysis"
)

// Allowcheck keeps the escape hatch honest: every //lint:allow must name
// a real analyzer and carry a non-empty justification, and every
// //lint: comment must parse as a known directive.  Its own diagnostics
// cannot be suppressed.
var Allowcheck = &analysis.Analyzer{
	Name: "allowcheck",
	Doc: "verify //lint:allow annotations: known analyzer name, non-empty justification, " +
		"no malformed //lint: directives",
	Run: runAllowcheck,
}

func runAllowcheck(pass *analysis.Pass) (any, error) {
	allows := ParseAllows(pass.Fset, pass.Files)
	for _, e := range allows.Entries() {
		if !knownAnalyzers[e.Analyzer] {
			pass.Reportf(e.Pos, "//lint:allow names unknown analyzer %q", e.Analyzer)
			continue
		}
		if e.Reason == "" {
			pass.Reportf(e.Pos, "//lint:allow %s without a justification; say why the "+
				"invariant cannot hold here", e.Analyzer)
		}
	}
	for _, pos := range allows.Malformed() {
		pass.Reportf(pos, "malformed //lint: directive; grammar is "+
			"'//lint:allow <analyzer> <justification>' or '//lint:hotpath [note]'")
	}
	return nil, nil
}

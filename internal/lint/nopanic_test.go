package lint_test

import (
	"testing"

	"cacheuniformity/internal/lint"
	"cacheuniformity/internal/lint/linttest"
)

func TestNopanic(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Nopanic,
		"example.com/internal/np", // constructor + reachable + annotated cases
		"example.com/pub",         // outside internal/: exempt
	)
}

package lint_test

import (
	"testing"

	"cacheuniformity/internal/lint"
	"cacheuniformity/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Ctxflow,
		"example.com/internal/flow", // flagged + annotated shim cases
		"example.com/cmd/tool",      // main packages may mint root contexts
	)
}

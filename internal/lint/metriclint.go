package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"cacheuniformity/internal/lint/analysis"
)

// Metriclint checks the hand-rolled Prometheus text exposition this
// repository writes (there is no client_golang in the image, so the
// exposition format IS the metrics API).  It finds fmt.Fprint* calls
// whose constant format string contains "# HELP " or "# TYPE " — the
// family-declaring lines — and enforces:
//
//  1. const-expressible names: a family name reaching a %s in a HELP or
//     TYPE line must trace to compile-time string constants — a literal,
//     a named constant, or a field of a range over a composite literal
//     whose entries are all literal strings (the families-table idiom).
//     A name computed at scrape time can silently fork a family per
//     request and explode scrape cardinality;
//  2. valid names: every traced name must match the Prometheus family
//     grammar [a-zA-Z_:][a-zA-Z0-9_:]*;
//  3. registered once: the same family name declared by two HELP lines
//     in one package is a duplicate registration — Prometheus scrapers
//     reject the exposition outright;
//  4. bounded label values: a `{label=%q}` series line must not be fed a
//     raw store key.  The heuristic is intentionally blunt: the label
//     argument may not be a call result, and its source text may not
//     name a key or cell ("key", "cellKey", req.Cell, ...) — label sets
//     must be small and roster-shaped (peers, tiers, schemes), never
//     per-cell.
var Metriclint = &analysis.Analyzer{
	Name: "metriclint",
	Doc:  "check hand-written Prometheus exposition: constant valid family names, single registration, bounded label values",
	Run:  runMetriclint,
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// labelValueRE matches a label whose value is filled by a %q verb, e.g.
// `{peer=%q}`.
var labelValueRE = regexp.MustCompile(`\{[a-zA-Z_][a-zA-Z0-9_]*=%q\}`)

// unboundedNameRE spots identifiers that smell like per-cell identity.
var unboundedNameRE = regexp.MustCompile(`(?i)(key|cell|hash|digest)`)

func runMetriclint(pass *analysis.Pass) (any, error) {
	// helpDecls accumulates family names declared by HELP lines across
	// the package, for the registered-once check.
	type decl struct {
		name string
		pos  token.Pos
	}
	var helpDecls []decl

	for _, f := range pass.Files {
		comps := compositeSources(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			format, args, ok := fprintfCall(pass, call)
			if !ok {
				return true
			}
			isExposition := strings.Contains(format, "# HELP ") || strings.Contains(format, "# TYPE ")

			verbs := fmtVerbs(format)
			if isExposition {
				for _, v := range verbs {
					declaring, isHelp := expositionNameVerb(format, v)
					if !declaring {
						continue
					}
					names, ok := traceNames(pass, comps, args, v.index)
					if !ok {
						pass.Reportf(call.Pos(), "metric family name is not a compile-time constant; use a literal or a range over a literal families table")
						continue
					}
					for _, name := range names {
						if !metricNameRE.MatchString(name) {
							pass.Reportf(call.Pos(), "invalid Prometheus family name %q", name)
						}
						if isHelp {
							helpDecls = append(helpDecls, decl{name, call.Pos()})
						}
					}
				}
				// Inline literal names ("# HELP simd_uptime_seconds ...").
				for _, name := range inlineFamilyNames(format) {
					if !metricNameRE.MatchString(name) {
						pass.Reportf(call.Pos(), "invalid Prometheus family name %q", name)
					}
				}
				for _, name := range inlineHelpNames(format) {
					helpDecls = append(helpDecls, decl{name, call.Pos()})
				}
			}

			// Bounded-label check: applies to series lines with or
			// without a HELP in the same format string.
			for _, loc := range labelValueRE.FindAllStringIndex(format, -1) {
				vi := verbIndexAt(verbs, loc[0], loc[1], 'q')
				if vi < 0 || vi >= len(args) {
					continue
				}
				arg := args[vi]
				if _, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					pass.Reportf(arg.Pos(), "metric label value is a call result; label values must come from a bounded, roster-shaped set")
					continue
				}
				if src := exprText(pass, arg); unboundedNameRE.MatchString(src) {
					pass.Reportf(arg.Pos(), "metric label value %q looks like a per-cell key; labels must be bounded (peers, tiers, schemes), never raw keys", src)
				}
			}
			return true
		})
	}

	// Registered-once: flag every declaration after the first, in
	// deterministic position order.
	sort.Slice(helpDecls, func(i, j int) bool {
		if helpDecls[i].name != helpDecls[j].name {
			return helpDecls[i].name < helpDecls[j].name
		}
		return helpDecls[i].pos < helpDecls[j].pos
	})
	for i := 1; i < len(helpDecls); i++ {
		if helpDecls[i].name == helpDecls[i-1].name && helpDecls[i].pos != helpDecls[i-1].pos {
			pass.Reportf(helpDecls[i].pos, "metric family %s is declared by more than one HELP line; each family must be registered once", helpDecls[i].name)
		}
	}
	return nil, nil
}

// fprintfCall matches fmt.Fprintf/Printf-family calls with a constant
// format string, returning the format and the verb arguments.
func fprintfCall(pass *analysis.Pass, call *ast.CallExpr) (string, []ast.Expr, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return "", nil, false
	}
	formatAt := -1
	switch fn.Name() {
	case "Sprintf", "Printf", "Errorf":
		formatAt = 0
	case "Fprintf":
		formatAt = 1
	default:
		return "", nil, false
	}
	if formatAt >= len(call.Args) {
		return "", nil, false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[formatAt]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", nil, false
	}
	return constant.StringVal(tv.Value), call.Args[formatAt+1:], true
}

// verb is one %-verb in a format string: its byte offsets and its index
// among the argument-consuming verbs.
type verb struct {
	start, end int
	char       byte
	index      int
}

// fmtVerbs scans a format string for argument-consuming verbs ("%%" is
// skipped; flags and widths are stepped over).
func fmtVerbs(format string) []verb {
	var verbs []verb
	idx := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		for j < len(format) && strings.IndexByte("+-# 0123456789.", format[j]) >= 0 {
			j++
		}
		if j >= len(format) {
			break
		}
		if format[j] == '%' {
			i = j
			continue
		}
		verbs = append(verbs, verb{start: i, end: j + 1, char: format[j], index: idx})
		idx++
		i = j
	}
	return verbs
}

// expositionNameVerb reports whether v fills the family-name slot of a
// HELP or TYPE line — i.e. the text immediately before the verb is
// "# HELP " or "# TYPE ".
func expositionNameVerb(format string, v verb) (declaring, isHelp bool) {
	for _, prefix := range []string{"# HELP ", "# TYPE "} {
		if v.start >= len(prefix) && format[v.start-len(prefix):v.start] == prefix {
			return true, prefix == "# HELP "
		}
	}
	return false, false
}

// verbIndexAt finds the argument index of the verb with the given char
// inside the [start,end) byte range of the format string.
func verbIndexAt(verbs []verb, start, end int, char byte) int {
	for _, v := range verbs {
		if v.start >= start && v.end <= end && v.char == char {
			return v.index
		}
	}
	return -1
}

// inlineFamilyNames extracts literal (verb-free) family names following
// "# HELP " or "# TYPE ".
func inlineFamilyNames(format string) []string {
	var names []string
	for _, prefix := range []string{"# HELP ", "# TYPE "} {
		rest := format
		for {
			i := strings.Index(rest, prefix)
			if i < 0 {
				break
			}
			rest = rest[i+len(prefix):]
			name := rest
			if j := strings.IndexAny(name, " \n"); j >= 0 {
				name = name[:j]
			}
			if name != "" && !strings.Contains(name, "%") {
				names = append(names, name)
			}
		}
	}
	return names
}

// inlineHelpNames is inlineFamilyNames restricted to HELP lines (the
// registration check counts each family's HELP declarations).
func inlineHelpNames(format string) []string {
	var names []string
	rest := format
	for {
		i := strings.Index(rest, "# HELP ")
		if i < 0 {
			return names
		}
		rest = rest[i+len("# HELP "):]
		name := rest
		if j := strings.IndexAny(name, " \n"); j >= 0 {
			name = name[:j]
		}
		if name != "" && !strings.Contains(name, "%") {
			names = append(names, name)
		}
	}
}

// compositeSources maps objects bound (by := or var) to a composite
// literal in this file — the families-table idiom metriclint traces
// names through.  Range statements extend the map: ranging over a mapped
// slice binds the value variable to the same literal.
type compositeInfo struct {
	lit *ast.CompositeLit
}

func compositeSources(pass *analysis.Pass, f *ast.File) map[types.Object]compositeInfo {
	m := map[types.Object]compositeInfo{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if lit, ok := ast.Unparen(n.Rhs[i]).(*ast.CompositeLit); ok {
					m[obj] = compositeInfo{lit: lit}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) {
					if lit, ok := ast.Unparen(n.Values[i]).(*ast.CompositeLit); ok {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							m[obj] = compositeInfo{lit: lit}
						}
					}
				}
			}
		}
		return true
	})
	// Second pass: range value variables inherit their source's literal.
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		vid, ok := rng.Value.(*ast.Ident)
		if !ok {
			return true
		}
		vobj := pass.TypesInfo.Defs[vid]
		if vobj == nil {
			return true
		}
		switch x := ast.Unparen(rng.X).(type) {
		case *ast.Ident:
			if sobj := pass.TypesInfo.Uses[x]; sobj != nil {
				if info, ok := m[sobj]; ok {
					m[vobj] = info
				}
			}
		case *ast.CompositeLit:
			m[vobj] = compositeInfo{lit: x}
		}
		return true
	})
	return m
}

// traceNames resolves the i-th verb argument to its set of
// compile-time string values: a constant, or a field selector on a
// range variable over a traced composite literal.  ok is false when the
// value cannot be shown constant.
func traceNames(pass *analysis.Pass, comps map[types.Object]compositeInfo, args []ast.Expr, i int) ([]string, bool) {
	if i >= len(args) {
		return nil, false
	}
	arg := ast.Unparen(args[i])

	// Plain constant (literal or named const).
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return []string{constant.StringVal(tv.Value)}, true
	}

	// f.name where f ranges over a composite literal of structs.
	sel, ok := arg.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	root, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		return nil, false
	}
	info, ok := comps[obj]
	if !ok {
		return nil, false
	}
	return namesFromComposite(pass, info.lit, sel.Sel.Name)
}

// namesFromComposite pulls the named field out of every element of a
// slice-of-structs composite literal; all values must be string
// constants.
func namesFromComposite(pass *analysis.Pass, lit *ast.CompositeLit, field string) ([]string, bool) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return nil, false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil, false
	}
	st, ok := slice.Elem().Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	fieldIdx := -1
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			fieldIdx = i
			break
		}
	}
	if fieldIdx < 0 {
		return nil, false
	}

	var names []string
	for _, elt := range lit.Elts {
		row, ok := ast.Unparen(elt).(*ast.CompositeLit)
		if !ok {
			return nil, false
		}
		var val ast.Expr
		keyed := false
		for _, re := range row.Elts {
			kv, isKV := re.(*ast.KeyValueExpr)
			if !isKV {
				continue
			}
			keyed = true
			if id, isID := kv.Key.(*ast.Ident); isID && id.Name == field {
				val = kv.Value
			}
		}
		if !keyed && fieldIdx < len(row.Elts) {
			val = row.Elts[fieldIdx]
		}
		if val == nil {
			return nil, false
		}
		tv, ok := pass.TypesInfo.Types[val]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return nil, false
		}
		names = append(names, constant.StringVal(tv.Value))
	}
	return names, true
}

// exprText renders an expression's source-ish text for the heuristic
// label check: dotted paths come back exact, everything else is a best
// effort from the identifiers involved.
func exprText(pass *analysis.Pass, e ast.Expr) string {
	if p := exprPath(pass, e); p != "" {
		return p
	}
	var parts []string
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			parts = append(parts, id.Name)
		}
		return true
	})
	return strings.Join(parts, ".")
}

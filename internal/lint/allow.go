package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The annotation grammar (documented in DESIGN.md § Enforced invariants):
//
//	//lint:allow <analyzer> <justification>
//	//lint:hotpath [note]
//
// An allowance suppresses the named analyzer's diagnostics on its own
// line and the line below it; placed in a declaration's doc comment it
// covers the entire declaration.  The justification is mandatory — the
// allowcheck analyzer fails the build on an empty one — so every escape
// hatch carries its reason in the source.  //lint:hotpath marks a
// function for the hotalloc analyzer and is only recognised in a
// function's doc comment.
//
// The CFG-based analyzers (lockcheck, goleak, errflow, httpresp,
// metriclint, closecheck) anchor each finding to the line that created
// the obligation — the Lock call, the go statement, the Open/Do
// acquisition, the handler's declaration — never to the return
// statement that fails it.  An allowance therefore belongs on (or
// directly above) the acquiring line; to waive a whole function, put it
// in the function's doc comment.  There is no file- or package-wide
// allowance form: every suppression is tied to one declaration or line
// so the next reader sees the waiver next to the code it excuses.

const (
	allowPrefix   = "//lint:allow"
	hotpathPrefix = "//lint:hotpath"
	lintPrefix    = "//lint:"
)

// AllowEntry is one parsed //lint:allow annotation.
type AllowEntry struct {
	// Analyzer is the analyzer name the allowance targets.
	Analyzer string
	// Reason is the justification text; allowcheck rejects empty ones.
	Reason string
	// Pos locates the annotation comment.
	Pos token.Pos
	// File and the inclusive FromLine..ToLine range define coverage.
	File     string
	FromLine int
	ToLine   int
}

// Allows indexes every lint directive of one package.
type Allows struct {
	entries []AllowEntry
	// malformed collects //lint: comments that parse as neither
	// directive, reported by allowcheck.
	malformed []token.Pos
}

// ParseAllows scans the package's comments and declaration docs.
func ParseAllows(fset *token.FileSet, files []*ast.File) *Allows {
	a := &Allows{}
	for _, f := range files {
		// Comment groups serving as declaration docs cover the whole
		// declaration; remember them so the generic walk below can widen
		// their range.
		docRange := map[*ast.CommentGroup][2]int{}
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				docRange[doc] = [2]int{
					fset.Position(decl.Pos()).Line,
					fset.Position(decl.End()).Line,
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, lintPrefix) {
					continue
				}
				if strings.HasPrefix(text, hotpathPrefix) {
					continue // consumed by hotpathFuncs
				}
				if !strings.HasPrefix(text, allowPrefix) {
					a.malformed = append(a.malformed, c.Pos())
					continue
				}
				rest := strings.TrimSpace(text[len(allowPrefix):])
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" {
					a.malformed = append(a.malformed, c.Pos())
					continue
				}
				pos := fset.Position(c.Pos())
				entry := AllowEntry{
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
					Pos:      c.Pos(),
					File:     pos.Filename,
					FromLine: pos.Line,
					ToLine:   pos.Line + 1,
				}
				if r, ok := docRange[cg]; ok {
					entry.FromLine, entry.ToLine = min(entry.FromLine, r[0]), r[1]
				}
				a.entries = append(a.entries, entry)
			}
		}
	}
	return a
}

// Allowed reports whether a diagnostic from the named analyzer at pos is
// covered by an allowance.
func (a *Allows) Allowed(analyzer string, fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	for _, e := range a.entries {
		if e.Analyzer == analyzer && e.File == p.Filename &&
			e.FromLine <= p.Line && p.Line <= e.ToLine {
			return true
		}
	}
	return false
}

// Entries exposes the parsed allowances (for allowcheck).
func (a *Allows) Entries() []AllowEntry { return a.entries }

// Malformed exposes unparseable //lint: directives (for allowcheck).
func (a *Allows) Malformed() []token.Pos { return a.malformed }

// hotpathFuncs returns the functions marked //lint:hotpath in their doc
// comments, in file order.
func hotpathFuncs(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathPrefix) {
					out = append(out, fd)
					break
				}
			}
		}
	}
	return out
}

package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"cacheuniformity/internal/lint"
)

func sampleFindings() []lint.Finding {
	return []lint.Finding{
		{
			Position: token.Position{Filename: "a/b.go", Line: 12, Column: 3},
			Analyzer: "lockcheck",
			Message:  `s.mu.Lock: lock is not released on every path to return`,
		},
		{
			Position: token.Position{Filename: "a/c.go", Line: 7, Column: 2},
			Analyzer: "errflow",
			Message:  "the result of Close includes an error that is silently discarded",
		},
	}
}

// The -json output is a machine interface: identical findings must
// encode to identical bytes, run after run, so CI can hash or diff it.
func TestFindingsJSONStable(t *testing.T) {
	first, err := lint.FindingsJSON(sampleFindings())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := lint.FindingsJSON(sampleFindings())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("encoding not stable:\n%s\nvs\n%s", first, again)
		}
	}

	const want = `[{"analyzer":"lockcheck","col":3,"file":"a/b.go","line":12,` +
		`"message":"s.mu.Lock: lock is not released on every path to return"},` +
		`{"analyzer":"errflow","col":2,"file":"a/c.go","line":7,` +
		`"message":"the result of Close includes an error that is silently discarded"}]`
	if string(first) != want {
		t.Fatalf("canonical form drifted:\n got %s\nwant %s", first, want)
	}
}

// An empty finding set is the CI happy path; it must be "[]", never
// "null", so downstream array parsers keep working.
func TestFindingsJSONEmpty(t *testing.T) {
	data, err := lint.FindingsJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Fatalf("empty findings encode as %q, want []", data)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(decoded) != 0 {
		t.Fatalf("round trip yielded %d entries", len(decoded))
	}
}

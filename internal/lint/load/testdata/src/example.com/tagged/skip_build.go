//go:build neverthistag

// This file is excluded by its //go:build line; it deliberately fails to
// type-check so accidental inclusion breaks the loader test loudly.
package tagged

const fromGuarded = definitelyUndefinedSymbol

// The _plan9 name suffix is itself a build constraint; on any test
// platform this repository supports, the file must be invisible.
package tagged

const fromPlan9 = plan9OnlySymbol

// Package tagged exercises the tree loader's file-selection rules: this
// file is the only one that survives build-constraint and _test.go
// filtering, so the loaded package must consist of exactly it.
package tagged

// Base is the only symbol the surviving file set defines.
const Base = 1

// _test.go files are skipped by name before parsing, so this file is
// deliberately not valid Go: a loader that tries to parse it fails.
package tagged

func broken( {{{

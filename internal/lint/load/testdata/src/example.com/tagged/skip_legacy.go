// +build neverthistag

// This file carries only a legacy // +build line (no //go:build); the
// loader must honour that form too.  Like skip_build.go it fails to
// type-check if ever included.
package tagged

const fromLegacyGuarded = alsoUndefinedSymbol

// Package load type-checks Go packages for the simlint analyzers without
// depending on golang.org/x/tools/go/packages (unavailable offline).
//
// Two loaders cover the two call sites:
//
//   - Module resolves patterns like ./... through `go list -deps -export`
//     and type-checks every in-module package against the toolchain's
//     export data — the same data the compiler itself uses, so the view
//     matches the build exactly and loading stays fast (no transitive
//     source type-checking).
//
//   - Tree loads a GOPATH-shaped source tree (internal/lint/testdata/src),
//     resolving intra-tree imports recursively and standard-library
//     imports through the toolchain's source importer.  It is the seam
//     the analysistest-style golden tests run through.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked, non-test view of a Go package.
type Package struct {
	// PkgPath is the import path ("cacheuniformity/internal/cache").
	PkgPath string
	// Name is the package name from the source.
	Name string
	// Dir is the directory holding the sources.
	Dir string
	// Fset is shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records resolution for Files.
	TypesInfo *types.Info
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// listPkg is the subset of `go list -json` output the module loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
}

// Module loads every package matched by patterns (relative to dir, which
// must sit inside a module) plus nothing else: dependencies contribute
// export data only.  Returned packages are sorted by import path.
func Module(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Two passes: the first names exactly the packages the patterns match
	// (the analysis targets), the second adds -deps so every dependency —
	// standard library included — contributes export data for the type
	// checker.
	matched, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	isTarget := map[string]bool{}
	for _, p := range matched {
		isTarget[p.ImportPath] = true
	}
	all, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listPkg
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && isTarget[p.ImportPath] {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	return checkTargets(fset, targets, exports)
}

// goList runs `go list` in dir over patterns and decodes its JSON stream.
func goList(dir string, patterns []string, deps bool) ([]listPkg, error) {
	args := []string{"list"}
	if deps {
		args = append(args, "-deps", "-export")
	}
	args = append(args, "-json=ImportPath,Dir,Name,GoFiles,Export,Standard")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// checkTargets parses and type-checks each target against export data.
func checkTargets(fset *token.FileSet, targets []listPkg, exports map[string]string) ([]*Package, error) {
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %v", err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Name:      t.Name,
			Dir:       t.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// treeLoader resolves a GOPATH-shaped source tree.
type treeLoader struct {
	root   string // the src directory: root/<import/path>/*.go
	fset   *token.FileSet
	std    types.ImporterFrom
	loaded map[string]*Package
	stack  map[string]bool // cycle detection
}

// Tree loads the named packages (and, transitively, any imports that
// resolve to directories under srcRoot) from a GOPATH-shaped tree.
// Standard-library imports are type-checked from GOROOT source.  Only the
// explicitly named packages are returned, sorted by import path.
func Tree(srcRoot string, pkgPaths ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	l := &treeLoader{
		root:   srcRoot,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		loaded: map[string]*Package{},
		stack:  map[string]bool{},
	}
	var pkgs []*Package
	for _, path := range pkgPaths {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// Import implements types.Importer over the tree (tree packages first,
// standard library as fallback).
func (l *treeLoader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isPkgDir(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

func isPkgDir(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			return true
		}
	}
	return false
}

func (l *treeLoader) load(path string) (*Package, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	if l.stack[path] {
		return nil, fmt.Errorf("load: import cycle through %q", path)
	}
	l.stack[path] = true
	defer delete(l.stack, path)

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" || isTestFile(name) {
			continue
		}
		// Honour build constraints the way `go list` does: a file excluded
		// by its //go:build (or legacy // +build) lines or by a
		// _GOOS/_GOARCH name suffix is invisible to the package.  This
		// happens before parsing, so excluded files may hold code that does
		// not even parse on this platform.
		if ok, merr := build.Default.MatchFile(dir, name); merr != nil {
			return nil, fmt.Errorf("load: %v", merr)
		} else if !ok {
			continue
		}
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, fmt.Errorf("load: %v", perr)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	p := &Package{
		PkgPath:   path,
		Name:      files[0].Name.Name,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.loaded[path] = p
	return p, nil
}

func isTestFile(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

package load_test

import (
	"os"
	"path/filepath"
	"testing"

	"cacheuniformity/internal/lint/load"
)

// fileNames extracts the base names of a package's parsed files.
func fileNames(t *testing.T, p *load.Package) []string {
	t.Helper()
	var names []string
	for _, f := range p.Files {
		names = append(names, filepath.Base(p.Fset.Position(f.Pos()).Filename))
	}
	return names
}

// The tree loader must apply the same file-selection rules as `go list`:
// _test.go files are skipped by name (before parsing — the testdata test
// file is not even valid Go), and files excluded by //go:build lines,
// legacy // +build lines, or a _GOOS name suffix are invisible.  Every
// excluded testdata file deliberately fails to parse or type-check, so
// accidental inclusion cannot pass silently.
func TestTreeSkipsConstrainedAndTestFiles(t *testing.T) {
	pkgs, err := load.Tree("testdata/src", "example.com/tagged")
	if err != nil {
		t.Fatalf("Tree: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Name != "tagged" {
		t.Errorf("package name %q, want tagged", p.Name)
	}
	names := fileNames(t, p)
	if len(names) != 1 || names[0] != "tagged.go" {
		t.Fatalf("loaded files %v, want exactly [tagged.go]", names)
	}
	if p.Types.Scope().Lookup("Base") == nil {
		t.Error("surviving file's symbol Base is missing from the type-checked scope")
	}
	for _, guarded := range []string{"fromGuarded", "fromLegacyGuarded", "fromPlan9"} {
		if p.Types.Scope().Lookup(guarded) != nil {
			t.Errorf("excluded file's symbol %s leaked into the package scope", guarded)
		}
	}
}

// The module loader delegates file selection to `go list`; this pins the
// same contract end to end on a throwaway module: build-tag-guarded and
// _test.go files never reach the type checker.
func TestModuleSkipsConstrainedAndTestFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/tmpmod\n\ngo 1.22\n")
	write("a.go", "package tmpmod\n\n// A is the surviving symbol.\nconst A = 1\n")
	write("skip.go", "//go:build neverthistag\n\npackage tmpmod\n\nconst guarded = undefinedSymbol\n")
	write("a_test.go", "package tmpmod\n\nfunc broken( {{{\n")

	pkgs, err := load.Module(dir, "./...")
	if err != nil {
		t.Fatalf("Module: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	names := fileNames(t, p)
	if len(names) != 1 || names[0] != "a.go" {
		t.Fatalf("loaded files %v, want exactly [a.go]", names)
	}
	if p.Types.Scope().Lookup("A") == nil {
		t.Error("symbol A missing from the type-checked scope")
	}
	if p.Types.Scope().Lookup("guarded") != nil {
		t.Error("build-tag-guarded symbol leaked into the package scope")
	}
}

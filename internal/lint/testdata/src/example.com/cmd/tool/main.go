// Command tool shows that main packages may mint root contexts.
package main

import (
	"context"

	"example.com/internal/flow"
)

func main() {
	ctx := context.Background()
	_ = flow.StreamCtx(ctx, 1)
}

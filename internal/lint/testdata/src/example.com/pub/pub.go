// Package pub sits outside internal/, so nopanic does not apply.
package pub

// Handle is the constructed thing.
type Handle struct{ n int }

// NewHandle may panic: the errors-not-panics contract is scoped to
// internal/ packages.
func NewHandle(n int) *Handle {
	if n < 0 {
		panic("pub: negative")
	}
	return &Handle{n: n}
}

// Package report sits outside the simulation packages, so detrand does
// not apply: wall-clock timestamps in report headers are fine.
package report

import "time"

// Stamp records when a report was produced.
func Stamp() time.Time {
	return time.Now()
}

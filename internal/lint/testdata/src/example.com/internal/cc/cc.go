// Package cc exercises closecheck: leaked Closers versus closes,
// deferred closes, error-arm nils, and escapes.
package cc

import (
	"io"
	"net/http"
	"os"
)

// The file is opened, read, and never closed.
func leak(path string) error {
	f, err := os.Open(path) // want "f \(\*os\.File\) is not closed on every path to return"
	if err != nil {
		return err
	}
	_, err = io.ReadAll(f)
	return err
}

// Deferred close right after the error check is the canonical shape;
// the error arm returns with a nil file and must stay silent.
func closed(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// A response body left open pins the transport's connection.
func body(c *http.Client, url string) error {
	resp, err := c.Get(url) // want "response body of resp is not closed on every path to return"
	if err != nil {
		return err
	}
	_, err = io.ReadAll(resp.Body)
	return err
}

// Draining (a borrow through io) then closing is the full idiom.
func bodyClosed(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// Reusing the acquisition's error variable for a later operation does
// not excuse the missing Close: once the value has been written to it is
// demonstrably live, and the early return leaks it.
func writeLeak(path string, data []byte) error {
	f, err := os.Create(path) // want "f \(\*os\.File\) is not closed on every path to return"
	if err != nil {
		return err
	}
	if _, err = f.Write(data); err != nil {
		return err
	}
	return f.Close()
}

type holder struct{ f *os.File }

// Returning the value hands the obligation to the caller.
func escapes(path string) (*holder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

// Handing the value to a same-package helper plausibly transfers
// ownership; the obligation moves with it.
func handedOff(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	consume(f)
	return nil
}

func consume(f *os.File) {
	defer f.Close()
}

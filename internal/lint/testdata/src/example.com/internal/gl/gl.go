// Package gl exercises goleak: goroutines that can only run forever
// versus the accepted termination idioms.
package gl

import "context"

// An unconditional spin loop has no way out.
func forever() {
	go func() { // want "goroutine can only run forever"
		for {
		}
	}()
}

// A receive loop with no returning branch never ends either — closing
// the channel just yields zero values forever.
func drainForever(ch chan struct{}) {
	go func() { // want "goroutine can only run forever"
		for {
			<-ch
		}
	}()
}

// The ctx.Done select case is the canonical termination path.
func withDone(ctx context.Context, ch chan int, sink func(int)) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				sink(v)
			}
		}
	}()
}

// Ranging a channel ends when the channel is closed.
func rangeLoop(ch chan int) {
	go drain(ch)
}

func drain(ch chan int) {
	for range ch {
	}
}

// A finite body simply runs to completion.
func oneShot(done chan<- struct{}) {
	go func() {
		done <- struct{}{}
	}()
}

// Goroutines started through function values are outside the analyzer's
// sight and must not be guessed at.
func opaque(fn func()) {
	go fn()
}

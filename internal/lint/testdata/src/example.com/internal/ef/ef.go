// Package ef exercises errflow: silently discarded errors versus
// explicit discards and the documented exemptions.
package ef

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// A bare call statement throws the error away invisibly.
func discard(r io.Reader) {
	io.Copy(io.Discard, r) // want "result of Copy includes an error that is silently discarded"
}

// The blank assignment is a reviewed, visible discard.
func explicit(r io.Reader) {
	_, _ = io.Copy(io.Discard, r)
}

// Handling the error is obviously fine.
func handled(r io.Reader) error {
	_, err := io.Copy(io.Discard, r)
	return err
}

// fmt printers and the always-nil in-memory writers are exempt.
func printing(b *strings.Builder) {
	fmt.Fprintf(b, "x")
	b.WriteString("y")
}

// Deferred calls are the idiomatic release form and are exempt; the
// close-on-every-path guarantee is closecheck's job.
func deferred(f *os.File) {
	defer f.Close()
}

// A goroutine discarding its only error result loses it forever — no
// caller can ever see it.
func goDiscard(f *os.File) {
	go f.Sync() // want "goroutine's result of Sync includes an error that is silently discarded"
}

// Package hot is the hotalloc fixture.
package hot

import "fmt"

// Access is a stand-in for one trace access.
type Access struct{ Addr uint64 }

// Model consumes accesses.
type Model struct {
	scratch []uint64
	total   uint64
}

// note records an event; the any parameter forces boxing at call sites.
func note(v any) {}

// AccessBatch is the hot replay loop; every allocating construct below is
// flagged.
//
//lint:hotpath one call per simulated access batch
func (m *Model) AccessBatch(batch []Access) {
	for _, a := range batch {
		p := &Access{Addr: a.Addr} // want "hot path: &composite literal allocates on every call"
		_ = p
		s := []uint64{a.Addr} // want "hot path: slice/map literal allocates on every call"
		_ = s
		m.scratch = append(m.scratch, a.Addr) // want "hot path: append to a non-parameter slice can grow and allocate"
		fmt.Println(a.Addr)                   // want "hot path: fmt.Println allocates"
		note(a.Addr)                          // want "hot path: converting uint64 to any boxes the value and allocates"
		f := func() uint64 { return a.Addr }  // want "hot path: closure captures enclosing variables and allocates"
		_ = f()
	}
}

// ReplayInto appends into a caller-provided slice: the parameter carries
// the capacity contract, so the append is not flagged, and the static
// (non-capturing) closure is free.
//
//lint:hotpath exercised per batch by the clean path
func (m *Model) ReplayInto(batch []Access, dst []uint64) []uint64 {
	add := func(x uint64) uint64 { return x + 1 }
	for _, a := range batch {
		dst = append(dst, add(a.Addr))
		m.total += a.Addr
	}
	return dst
}

// Setup is unmarked: construction-time allocation is the point, nothing
// here is flagged.
func Setup(n int) *Model {
	return &Model{scratch: make([]uint64, 0, n)}
}

// Flush is marked but keeps an annotated escape hatch for its one cold
// logging call.
//
//lint:hotpath drains once per run
func (m *Model) Flush() {
	//lint:allow hotalloc cold path, runs once per simulation not per access
	fmt.Println(m.total)
}

// Package ac is the allowcheck fixture.  The block-comment wants share
// lines with the //lint: directives under test, because a // directive
// consumes the rest of its line.
package ac

// Good carries a justification and names a real analyzer: clean.
//
//lint:allow detrand the output is sorted before use
func Good(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Bare has no justification.
func Bare() {
	/* want "without a justification" */ //lint:allow nopanic
}

// Unknown names an analyzer that does not exist.
func Unknown() {
	/* want "names unknown analyzer" */ //lint:allow speling this never happens
}

// Mangled is not a recognised directive at all.
func Mangled() {
	/* want "malformed //lint: directive" */ //lint:permit detrand whatever
}

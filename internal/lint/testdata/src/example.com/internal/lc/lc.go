// Package lc exercises lockcheck: leaked locks, double locks, and
// blocking calls under a held lock, next to the idiomatic shapes that
// must stay silent.
package lc

import (
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Early return inside the critical section leaks the lock.
func (s *store) leak(cond bool) int {
	s.mu.Lock() // want "s\.mu\.Lock: lock is not released on every path to return"
	if cond {
		return 0
	}
	s.mu.Unlock()
	return s.n
}

// The canonical shape: deferred unlock covers every path.
func (s *store) deferred(cond bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cond {
		return 0
	}
	return s.n
}

// Explicit unlock on both arms is fine too.
func (s *store) bothArms(cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return 0
	}
	s.mu.Unlock()
	return s.n
}

// sync.Mutex is not reentrant: a second Lock is a self-deadlock.
func (s *store) double() {
	s.mu.Lock()
	s.mu.Lock() // want "s\.mu\.Lock: lock is already held on every path to this call \(self-deadlock\)"
	s.mu.Unlock()
	s.mu.Unlock()
}

// File I/O under the lock serialises every other critical section
// behind the disk.
func (s *store) readUnder(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile(path) // want "file I/O \(os\.ReadFile\) while holding s\.mu"
}

// The fixed shape: read outside, publish under the lock.
func (s *store) readOutside(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	s.mu.Lock()
	s.n = len(data)
	s.mu.Unlock()
	return data, err
}

// A channel send while holding the read lock parks every writer behind
// the receiver.
func (s *store) sendUnder(ch chan int) {
	s.rw.RLock()
	ch <- s.n // want "channel send while holding s\.rw"
	s.rw.RUnlock()
}

// A send inside a defaulted select cannot block and stays silent.
func (s *store) trySendUnder(ch chan int) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select {
	case ch <- s.n:
	default:
	}
}

// Unlock inside a deferred function literal still discharges the
// release obligation.
func (s *store) deferredLit() int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.n
}

// Package np is the nopanic fixture.
package np

import "errors"

// Table is the constructed thing.
type Table struct{ rows int }

// NewTable panics in an exported constructor: flagged directly.
func NewTable(rows int) *Table {
	if rows <= 0 {
		panic("np: rows must be positive") // want "panic in exported constructor NewTable"
	}
	return &Table{rows: rows}
}

// NewChecked routes through a helper whose panic is reachable.
func NewChecked(rows int) (*Table, error) {
	if rows <= 0 {
		return nil, errors.New("np: rows must be positive")
	}
	return &Table{rows: validate(rows)}, nil
}

// validate is only called from NewChecked, so its panic is flagged as
// reachable.
func validate(rows int) int {
	if rows > 1<<20 {
		panic("np: unreasonable row count") // want "panic in validate is reachable from exported constructor NewChecked"
	}
	return rows
}

// NewRing documents a true must-not-happen invariant: the annotation in
// the helper carries the justification.
func NewRing(n int) *Table {
	return &Table{rows: mask(ceilPow2(n))}
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func mask(p int) int {
	if p&(p-1) != 0 {
		//lint:allow nopanic ceilPow2 guarantees a power of two on every call path
		panic("np: mask of non-power-of-two")
	}
	return p - 1
}

// Grow panics outside any constructor path: not nopanic's business
// (and not annotated).
func (t *Table) Grow(n int) {
	if n < 0 {
		panic("np: negative growth")
	}
	t.rows += n
}

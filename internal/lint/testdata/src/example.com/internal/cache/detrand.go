// Package cache is a detrand fixture standing in for a simulation
// package (its import path matches the internal/cache pattern).
package cache

import (
	crand "crypto/rand" // want "import of crypto/rand in a simulation package breaks run-to-run determinism"
	"math/rand"         // want "import of math/rand in a simulation package breaks run-to-run determinism"
	"time"
)

// Sink receives order-sensitive results.
var Sink []string

// Draw leans on ambient entropy: both the generator and the clock are
// flagged.
func Draw() int64 {
	buf := make([]byte, 8)
	_, _ = crand.Read(buf)
	n := rand.Int63()                // uses the forbidden import (flagged at the import site)
	return n + time.Now().UnixNano() // want "time.Now in a simulation package breaks run-to-run determinism"
}

// CollectNames leaks map iteration order into a slice.
func CollectNames(m map[string]int) []string {
	var out []string
	for name := range m { // want "map iteration order leaks into the element order of out"
		out = append(out, name)
	}
	return out
}

// SumWeights accumulates floats in map order: the rounding differs from
// run to run.
func SumWeights(m map[string]float64) float64 {
	total := 0.0
	for _, w := range m { // want "map iteration order leaks into floating-point accumulation into total"
		total += w
	}
	return total
}

// CountInts accumulates integers, which commutes exactly: not flagged.
func CountInts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Publish sends in map order.
func Publish(m map[string]int, ch chan string) {
	for name := range m { // want "map iteration order leaks into a channel send"
		ch <- name
	}
}

// SortedNames collects then sorts, so the map order never escapes; the
// annotation records that.
func SortedNames(m map[string]int) []string {
	var out []string
	//lint:allow detrand the slice is sorted before it is returned
	for name := range m {
		out = append(out, name)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// FillByKey writes through keys, which is order-insensitive: not flagged.
func FillByKey(m map[int]int, dst []int) {
	for k, v := range m {
		dst[k] = v
	}
}

// Package hr exercises httpresp: the exactly-one-status-per-path
// protocol and the 503-carries-Retry-After rule.
package hr

import "net/http"

// A constant 503 with no Retry-After on its path breaks re-routing.
func bare503(w http.ResponseWriter, _ *http.Request) {
	http.Error(w, "overloaded", http.StatusServiceUnavailable) // want "503 written without Retry-After on this path"
}

// Retry-After set before the status satisfies the ladder.
func retry503(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte("draining\n"))
}

// A handler that can return without writing leaves the client hanging.
func missing(w http.ResponseWriter, ok bool) { // want "a path of this handler returns without writing a response status"
	if !ok {
		return
	}
	w.WriteHeader(http.StatusOK)
}

// A handler that never writes at all is a dead endpoint.
func silent(w http.ResponseWriter, _ *http.Request) { // want "no path of this handler writes a response"
}

// The second WriteHeader is the "superfluous WriteHeader" runtime
// warning, caught statically.
func double(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusTeapot) // want "response status written more than once on this path"
}

// A non-constant status in a shared helper is fine: the caller decides.
func writeStatus(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
	w.Write([]byte("ok\n"))
}

// Delegating to a helper makes the function opaque — the helper owns
// part of the protocol and is checked on its own graph.
func delegated(w http.ResponseWriter, _ *http.Request) {
	writeStatus(w, http.StatusOK)
}

// Body writes after the status are one response, not a double write.
func chunked(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("part one\n"))
	w.Write([]byte("part two\n"))
}

// Package ml exercises metriclint over hand-written Prometheus text
// exposition: constant family names, the name grammar, single
// registration, and bounded label values.
package ml

import (
	"fmt"
	"strings"
)

// The families-table idiom: names live in a composite literal of
// string constants and are traced through the range variable.
func good(b *strings.Builder, vals map[string]uint64) {
	families := []struct {
		name, help string
	}{
		{"app_requests_total", "Requests received."},
		{"app_errors_total", "Requests answered with an error."},
	}
	for _, f := range families {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", f.name, f.help, f.name, f.name, vals[f.name])
	}
}

// A name computed at scrape time can fork a family per request.
func dynamic(b *strings.Builder, name string) {
	fmt.Fprintf(b, "# HELP %s dynamic\n", name) // want "metric family name is not a compile-time constant"
}

// Family names may not start with a digit.
func invalid(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP 9bad no\n# TYPE 9bad counter\n") // want "invalid Prometheus family name" "invalid Prometheus family name"
}

// The same family declared by two HELP lines is a duplicate
// registration; scrapers reject the whole exposition.
func dupA(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP app_dup_total one\n# TYPE app_dup_total counter\n")
}

func dupB(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP app_dup_total two\n# TYPE app_dup_total counter\n") // want "declared by more than one HELP line"
}

// Labels must come from bounded, roster-shaped sets.
func labels(b *strings.Builder, peers []string, key string) {
	for _, p := range peers {
		fmt.Fprintf(b, "app_peer_up{peer=%q} 1\n", p)
	}
	fmt.Fprintf(b, "app_cell_hits{cell=%q} 1\n", key) // want "looks like a per-cell key"
	fmt.Fprintf(b, "app_thing{id=%q} 1\n", derive()) // want "label value is a call result"
}

func derive() string { return "x" }

// Package flow is the ctxflow fixture.
package flow

import "context"

// Results is a placeholder payload.
type Results struct{ N int }

// Stream is a plain variant with a Ctx sibling.
func Stream(n int) Results { return StreamCtx(context.Background(), n) } // want "context.Background creates a fresh root mid-stack"

// StreamCtx is the context-aware variant.
func StreamCtx(ctx context.Context, n int) Results {
	_ = ctx
	return Results{N: n}
}

// Legacy is an annotated compatibility shim: the Background call is
// allowed because the justification explains it.
//
//lint:allow ctxflow pre-PR3 callers hold no context; remove with them
func Legacy(n int) Results {
	return StreamCtx(context.Background(), n)
}

// Todo demonstrates the TODO form.
func Todo() context.Context {
	return context.TODO() // want "context.TODO creates a fresh root mid-stack"
}

// Forward holds a ctx and passes it on: not flagged.
func Forward(ctx context.Context, n int) Results {
	return StreamCtx(ctx, n)
}

// Drops holds a ctx but calls the plain variant, losing cancellation.
func Drops(ctx context.Context, n int) Results {
	_ = ctx
	return Stream(n) // want "Drops receives a ctx but calls Stream, dropping cancellation; call StreamCtx and pass the context"
}

// Runner has a method pair.
type Runner struct{}

// Run is the plain method variant.
func (Runner) Run(n int) Results { return Results{N: n} }

// RunContext is the context-aware method variant.
func (Runner) RunContext(ctx context.Context, n int) Results {
	_ = ctx
	return Results{N: n}
}

// DropsMethod drops its ctx on a method call with a Context sibling.
func DropsMethod(ctx context.Context, r Runner) Results {
	_ = ctx
	return r.Run(1) // want "DropsMethod receives a ctx but calls Run, dropping cancellation; call RunContext and pass the context"
}

// NoCtxParam has no context, so calling the plain variant is fine.
func NoCtxParam(n int) Results {
	return Stream(n)
}

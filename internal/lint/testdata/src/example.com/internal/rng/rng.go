// Package rng is exempt from detrand: it is the one place randomness is
// allowed to live, so nothing here is flagged.
package rng

import "math/rand"

// Seed builds a seeded source; fine here.
func Seed(n int64) *rand.Rand {
	return rand.New(rand.NewSource(n))
}

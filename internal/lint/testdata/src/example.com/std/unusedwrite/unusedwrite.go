// Package unusedwrite is the unusedwrite fixture.
package unusedwrite

// Point is a small value type.
type Point struct{ X, Y int }

// LostWrite mutates a by-value parameter copy that is never read again.
func LostWrite(p Point) int {
	v := p.X + p.Y
	p.X = v // want "unused write: p is a local copy that is never read after this write"
	return v
}

// ReadAfter mutates the copy and then reads it: silent.
func ReadAfter(p Point) int {
	p.X = 10
	return p.X + p.Y
}

// Returned writes a copy it then returns: silent.
func Returned(p Point) Point {
	p.Y = 3
	return p
}

// ThroughPointer writes through a pointer, visible to the caller: silent.
func ThroughPointer(p *Point) {
	p.X = 1
}

// AddressTaken escapes the copy before the write: silent.
func AddressTaken(p Point) *Point {
	q := &p
	p.X = 2
	return q
}

// SelfAssign copies a variable onto itself.
func SelfAssign(n int) int {
	n = n // want "self-assignment of n"
	return n
}

// InLoop writes inside a loop where an earlier-positioned read runs on
// the next iteration: silent by design.
func InLoop(ps []Point) int {
	total := 0
	var acc Point
	for _, p := range ps {
		total += acc.X
		acc.X = p.X
	}
	return total
}

// Package nilness is the nilness fixture.
package nilness

// Node is a list cell.
type Node struct {
	Val  int
	Next *Node
}

// DerefNil reads a field on the branch where the pointer is known nil.
func DerefNil(n *Node) int {
	if n == nil {
		return n.Val // want "nil dereference: n is nil on this path"
	}
	return n.Val
}

// StarNil explicitly dereferences on the nil branch of a flipped test.
func StarNil(n *Node) Node {
	if n != nil {
		return *n
	} else {
		return *n // want "nil dereference: n is nil on this path"
	}
}

// IndexNil indexes a slice known to be nil.
func IndexNil(s []int) int {
	if s == nil {
		return s[0] // want "index of nil slice s on this path"
	}
	return s[0]
}

// CallNil invokes a func value known to be nil.
func CallNil(f func() int) int {
	if f == nil {
		return f() // want "call of nil function f on this path"
	}
	return f()
}

// Reassigned heals the nil before the use: silent.
func Reassigned(n *Node) int {
	if n == nil {
		n = &Node{}
		return n.Val
	}
	return n.Val
}

// MapRead reads from a nil map, which is legal: silent.
func MapRead(m map[string]int) int {
	if m == nil {
		return m["missing"]
	}
	return m["present"]
}

// NilMethod may be a legal call on a nil receiver: silent.
func NilMethod(n *Node) int {
	if n == nil {
		return n.Tail()
	}
	return n.Tail()
}

// Tail tolerates nil receivers.
func (n *Node) Tail() int {
	if n == nil {
		return 0
	}
	return n.Val
}

// Package shadow is the shadow fixture.
package shadow

import "errors"

// Open is a failing operation.
func Open(ok bool) (int, error) {
	if !ok {
		return 0, errors.New("shadow: not ok")
	}
	return 1, nil
}

// Classic loses the inner error: err is redeclared with the same type in
// the inner scope and the outer err is read afterwards.
func Classic(ok bool) error {
	v, err := Open(true)
	if v > 0 {
		v2, err := Open(ok) // want "declaration of \"err\" shadows declaration at"
		_ = v2
		_ = err
	}
	return err
}

// FreshScope redeclares err but never reads the outer one again: silent.
func FreshScope(ok bool) int {
	v, err := Open(true)
	_ = err
	if v > 0 {
		v2, err := Open(ok)
		if err != nil {
			return -1
		}
		return v2
	}
	return v
}

// DifferentType reuses a name for an unrelated type: deliberate, silent.
func DifferentType(n int) int {
	v := n
	{
		v := "label"
		_ = v
	}
	return v + 1
}

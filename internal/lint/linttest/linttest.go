// Package linttest is an analysistest-style golden harness for the
// simlint analyzers: testdata packages carry `// want "regexp"` comments
// on the lines an analyzer must flag, and the harness fails on both
// missing and unexpected diagnostics.  Lines without a want comment
// therefore assert silence — which is how the allowed/annotated cases
// are locked in.
package linttest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cacheuniformity/internal/lint"
	"cacheuniformity/internal/lint/analysis"
	"cacheuniformity/internal/lint/load"
)

// wantRE extracts the quoted patterns of one want comment.
var wantRE = regexp.MustCompile(`want\s+(.*)$`)

// quotedRE extracts each double-quoted fragment.
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the named packages from srcRoot (GOPATH-shaped, usually
// "testdata/src") and checks the analyzer's diagnostics — after
// //lint:allow suppression — against the packages' want comments.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	abs, err := filepath.Abs(srcRoot)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkgs, err := load.Tree(abs, pkgPaths...)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	// key: file:line -> expected patterns.
	wants := map[string][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			collectWants(t, pkg, f, wants)
		}
	}

	for _, fd := range findings {
		key := posKey(fd.Position.Filename, fd.Position.Line)
		hit := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(fd.Message) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s",
				fd.Position.Filename, fd.Position.Line, fd.Analyzer, fd.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s: no %s message matching %q",
					key, a.Name, w.raw)
			}
		}
	}
}

func collectWants(t *testing.T, pkg *load.Package, f *ast.File, wants map[string][]*want) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			// Both comment forms carry wants; the block form exists so a
			// want can share a line with a //lint: directive (which
			// otherwise consumes the rest of the line).
			text := strings.TrimSpace(c.Text)
			text = strings.TrimPrefix(text, "//")
			text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			m := wantRE.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			frags := quotedRE.FindAllStringSubmatch(m[1], -1)
			if len(frags) == 0 {
				t.Fatalf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
			}
			for _, frag := range frags {
				re, err := regexp.Compile(frag[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, frag[1], err)
				}
				key := posKey(pos.Filename, pos.Line)
				wants[key] = append(wants[key], &want{re: re, raw: frag[1]})
			}
		}
	}
}

func posKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

package lint

import (
	"go/ast"
	"go/types"
	"regexp"

	"cacheuniformity/internal/lint/analysis"
)

// simPkgRE matches the simulation packages whose results must be
// bit-identical run-to-run: the model, scheme, and workload packages the
// paper's figures are reproduced through, plus the result store (whose
// keys and manifests must be deterministic for content addressing to
// work) and the HTTP server in front of it (which may only touch the
// clock through explicitly justified allowances), the declarative scheme
// registry (whose canonical declarations key the result store) and the
// dynamic scheme families it instantiates.
var simPkgRE = regexp.MustCompile(`(^|/)internal/(cache|assoc|hier|indexing|smt|workload|core|sim|resultstore|server|registry|dynamic)(/|$)`)

// rngPkgRE matches the one package allowed to own randomness: every
// random draw in the simulator flows through internal/rng's seeded,
// version-pinned generators.
var rngPkgRE = regexp.MustCompile(`(^|/)internal/rng(/|$)`)

// internalPkgRE matches any package under an internal/ tree (the scope of
// the nopanic errors-not-panics contract).
var internalPkgRE = regexp.MustCompile(`(^|/)internal(/|$)`)

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, conversions, and indirect calls through variables.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function of the named package
// (e.g. "time", "Now").
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// rootIdent unwraps selectors, indexes, stars, and parens down to the
// base identifier of an expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// declaredOutside reports whether the object an identifier refers to is
// declared outside the [lo, hi] node span (i.e. the reference reaches out
// of the region).
func declaredOutside(pass *analysis.Pass, id *ast.Ident, lo, hi ast.Node) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < lo.Pos() || obj.Pos() > hi.End()
}

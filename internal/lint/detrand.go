package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"cacheuniformity/internal/lint/analysis"
)

// Detrand enforces run-to-run determinism in the simulation packages:
// every figure in the paper is a comparison of miss-rate and uniformity
// numbers that must be bit-identical across runs, so ambient entropy
// (math/rand, crypto/rand, wall clocks) and map-iteration-order
// dependence are forbidden outside internal/rng.
var Detrand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid nondeterminism in simulation packages: math/rand, crypto/rand, " +
		"time.Now, and order-sensitive iteration over maps",
	Run: runDetrand,
}

// forbiddenImports are the entropy sources simulation code must not reach
// for; internal/rng wraps a pinned deterministic generator instead.
var forbiddenImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func runDetrand(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !simPkgRE.MatchString(path) || rngPkgRE.MatchString(path) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err == nil && forbiddenImports[p] {
				pass.Reportf(imp.Pos(),
					"import of %s in a simulation package breaks run-to-run determinism; use internal/rng", p)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func); ok && isPkgFunc(fn, "time", "Now") {
					pass.Reportf(n.Pos(),
						"time.Now in a simulation package breaks run-to-run determinism")
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkMapRange flags ranges over maps whose body's observable effect
// depends on iteration order: appends to (or sends on) something that
// outlives the loop, and floating-point accumulation, where summation
// order changes the rounding.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(rs.Pos(),
				"map iteration order leaks into a channel send; iterate over sorted keys")
			return false
		case *ast.AssignStmt:
			if effect := orderSensitiveAssign(pass, rs, n); effect != "" {
				pass.Reportf(rs.Pos(),
					"map iteration order leaks into %s; iterate over sorted keys", effect)
				return false
			}
		}
		return true
	})
}

// orderSensitiveAssign classifies one assignment inside a map-range body;
// it returns a description of the order-sensitive effect, or "".
func orderSensitiveAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		// Float accumulation: rounding depends on the order of the
		// operands.  Integer accumulation commutes exactly and passes.
		for _, lhs := range as.Lhs {
			id := rootIdent(lhs)
			if id == nil || !declaredOutside(pass, id, rs, rs) {
				continue
			}
			if b, ok := pass.TypesInfo.TypeOf(lhs).Underlying().(*types.Basic); ok &&
				b.Info()&types.IsFloat != 0 {
				return "floating-point accumulation into " + id.Name
			}
		}
	case token.ASSIGN, token.DEFINE:
		// out = append(out, ...) where out is declared outside the loop:
		// the element order of the result is the map's iteration order.
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			} else if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if i < len(as.Lhs) {
				if id := rootIdent(as.Lhs[i]); id != nil && declaredOutside(pass, id, rs, rs) {
					return "the element order of " + id.Name
				}
			}
		}
	}
	return ""
}

package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"cacheuniformity/internal/lint/analysis"
	"cacheuniformity/internal/lint/cfg"
)

// Httpresp checks the response-writing protocol of every function that
// takes an http.ResponseWriter, over its control-flow graph:
//
//  1. exactly one status per path: a handler path that returns without
//     writing anything leaves the client hanging on the server's idle
//     timeout, and a second WriteHeader after a status (or after the
//     implicit 200 of a body write) is the "superfluous WriteHeader"
//     runtime warning caught at compile time;
//  2. every 503 carries Retry-After: the cluster's degradation ladder —
//     drain shedding, readiness, queue shedding — is built on peers and
//     load balancers honouring Retry-After, so a bare 503 silently
//     breaks re-routing.  The check fires where a *constant* 503
//     (http.StatusServiceUnavailable) reaches WriteHeader or http.Error
//     on a path where no Retry-After header has been set.
//
// Checking is modular: passing the writer to a function the analyzer
// cannot classify (a same-package helper like s.fail, a middleware)
// makes the function opaque — the helper owns part of the protocol and
// is verified on its own graph — and the exactly-once rule is waived
// for it.  Direct writes, and the 503 rule, are still enforced before
// the writer escapes.  net/http's own writers (Error, NotFound,
// Redirect, ServeFile, ServeContent) and the fmt printers targeting the
// writer are classified, not opaque.
var Httpresp = &analysis.Analyzer{
	Name: "httpresp",
	Doc:  "report handler paths writing zero or multiple response statuses, and constant 503s without Retry-After",
	Run:  runHttpresp,
}

// respFact describes the writer's state on entry to a block: how many
// status writes have happened on the fewest- and most-writing paths,
// whether Retry-After is set on every path, and whether the writer has
// escaped to an unclassifiable callee.
type respFact struct {
	minW, maxW int  // status/body writes, capped at 2
	retry      bool // Retry-After set on EVERY path (must)
	opaque     bool // writer escaped on SOME path (may)
}

func runHttpresp(pass *analysis.Pass) (any, error) {
	forEachFunc(pass, func(u funcUnit) {
		if u.Type == nil || u.Type.Params == nil {
			return
		}
		for _, field := range u.Type.Params.List {
			if t := pass.TypesInfo.TypeOf(field.Type); t == nil || !isNamedType(t, "net/http", "ResponseWriter") {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					checkRespWriter(pass, u, name)
				}
			}
		}
	})
	return nil, nil
}

func checkRespWriter(pass *analysis.Pass, u funcUnit, w *ast.Ident) {
	g := u.graph()
	wObj := pass.TypesInfo.Defs[w]
	if wObj == nil {
		return
	}
	isW := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == wObj
	}

	reported := map[string]bool{}
	reportf := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d:%s", pos, msg)
		if !reported[key] {
			reported[key] = true
			pass.Reportf(pos, "%s", msg)
		}
	}

	statusWrite := func(f respFact, pos token.Pos, code int, known bool) respFact {
		if f.minW >= 1 {
			reportf(pos, "response status written more than once on this path")
		}
		if known && code == 503 && !f.retry {
			reportf(pos, "503 written without Retry-After on this path; the degradation ladder needs it to re-route")
		}
		f.minW = capAt2(f.minW + 1)
		f.maxW = capAt2(f.maxW + 1)
		return f
	}
	bodyWrite := func(f respFact) respFact {
		// A body write implies status 200 if none was written; repeated
		// body writes are one response, not a protocol violation.
		f.minW = max(f.minW, 1)
		f.maxW = max(f.maxW, 1)
		return f
	}

	transfer := func(n ast.Node, f respFact) respFact {
		ast.Inspect(n, func(inner ast.Node) bool {
			switch inner := inner.(type) {
			case *ast.FuncLit:
				// Captured writer: the closure may write at any time.
				if mentionsObj(pass, inner.Body, wObj) {
					f.opaque, f.retry = true, true
				}
				return false
			case *ast.CallExpr:
				f = transferRespCall(pass, inner, f, isW, statusWrite, bodyWrite)
			case *ast.AssignStmt:
				for _, r := range inner.Rhs {
					if isW(r) {
						f.opaque, f.retry = true, true
					}
				}
			}
			return true
		})
		return f
	}

	in := cfg.Forward(g, cfg.Lattice[respFact]{
		Bottom: func() respFact { return respFact{} },
		Join: func(a, b respFact) respFact {
			return respFact{
				minW:   min(a.minW, b.minW),
				maxW:   max(a.maxW, b.maxW),
				retry:  a.retry && b.retry,
				opaque: a.opaque || b.opaque,
			}
		},
		Equal: func(a, b respFact) bool { return a == b },
		Transfer: func(b *cfg.Block, f respFact) respFact {
			for _, n := range b.Nodes {
				f = transfer(n, f)
			}
			return f
		},
	})

	if exit, ok := in[g.Exit]; ok && !exit.opaque {
		if exit.maxW == 0 {
			reportf(w.Pos(), "no path of this handler writes a response; the client hangs until the server's timeout")
		} else if exit.minW == 0 {
			reportf(w.Pos(), "a path of this handler returns without writing a response status")
		}
	}
}

// transferRespCall classifies one call against the tracked writer.
func transferRespCall(pass *analysis.Pass, call *ast.CallExpr, f respFact,
	isW func(ast.Expr) bool,
	statusWrite func(respFact, token.Pos, int, bool) respFact,
	bodyWrite func(respFact) respFact) respFact {

	// Direct method calls on the writer.
	if recv, method, ok := methodCall(call); ok {
		if isW(recv) {
			switch method {
			case "WriteHeader":
				code, known := intConstArg(pass, call, 0)
				return statusWrite(f, call.Pos(), code, known)
			case "Write":
				return bodyWrite(f)
			case "Header":
				return f // reading the header map writes nothing
			}
		}
		// w.Header().Set("Retry-After", ...) — recognise through the
		// Header() call on the tracked writer.
		if method == "Set" || method == "Add" {
			if hcall, ok := ast.Unparen(recv).(*ast.CallExpr); ok {
				if hrecv, hname, ok := methodCall(hcall); ok && hname == "Header" && isW(hrecv) {
					if key, known := stringConstArg(pass, call, 0); known && key == "Retry-After" {
						f.retry = true
					}
					return f
				}
			}
		}
	}

	// Package functions taking the writer as an argument.
	wArg := -1
	for i, a := range call.Args {
		if isW(a) {
			wArg = i
			break
		}
	}
	if wArg < 0 {
		return f
	}
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "net/http":
			switch fn.Name() {
			case "Error":
				code, known := intConstArg(pass, call, 2)
				return statusWrite(f, call.Pos(), code, known)
			case "NotFound":
				return statusWrite(f, call.Pos(), 404, true)
			case "Redirect":
				code, known := intConstArg(pass, call, 3)
				return statusWrite(f, call.Pos(), code, known)
			case "ServeFile", "ServeContent":
				return statusWrite(f, call.Pos(), 0, false)
			}
		case "fmt":
			return bodyWrite(f)
		}
	}
	// Anything else owning the writer: a helper verified on its own
	// graph.  Protocol responsibility leaves this function.
	f.opaque, f.retry = true, true
	return f
}

// intConstArg returns call.Args[i] as a constant int, if it is one.
func intConstArg(pass *analysis.Pass, call *ast.CallExpr, i int) (int, bool) {
	if i >= len(call.Args) {
		return 0, false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[i]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	return int(v), exact
}

// stringConstArg returns call.Args[i] as a constant string, if it is one.
func stringConstArg(pass *analysis.Pass, call *ast.CallExpr, i int) (string, bool) {
	if i >= len(call.Args) {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[i]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// mentionsObj reports whether any identifier inside n resolves to obj.
func mentionsObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(inner ast.Node) bool {
		if id, ok := inner.(*ast.Ident); ok {
			if u := pass.TypesInfo.Uses[id]; u != nil && u == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

func capAt2(n int) int {
	if n > 2 {
		return 2
	}
	return n
}

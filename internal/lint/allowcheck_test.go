package lint_test

import (
	"testing"

	"cacheuniformity/internal/lint"
	"cacheuniformity/internal/lint/linttest"
)

func TestAllowcheck(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Allowcheck,
		"example.com/internal/ac",
	)
}

package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"cacheuniformity/internal/lint/analysis"
)

// sortedDeclObjects orders the call-graph nodes by source position so the
// constructor-reachability walk (and hence diagnostic attribution) is
// deterministic — the suite must hold itself to the invariant it checks.
func sortedDeclObjects(decls map[types.Object]*ast.FuncDecl) []types.Object {
	out := make([]types.Object, 0, len(decls))
	for obj := range decls {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// Nopanic enforces PR 3's errors-not-panics contract in internal/
// packages: exported constructors (New*/Must* package functions) return
// errors; a panic anywhere in the static call tree under one turns a bad
// configuration into a crashed experiment grid instead of a reported
// cell error.  True must-not-happen invariants carry a
// //lint:allow nopanic annotation with their justification.
var Nopanic = &analysis.Analyzer{
	Name: "nopanic",
	Doc: "forbid panic in exported constructors (New*/Must*) and in any same-package " +
		"function statically reachable from one, inside internal/ packages",
	Run: runNopanic,
}

func runNopanic(pass *analysis.Pass) (any, error) {
	if !internalPkgRE.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}

	// Map every declared function/method to its AST, then build the
	// same-package static call graph.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	callees := func(fd *ast.FuncDecl) []types.Object {
		var out []types.Object
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(pass, call); fn != nil {
				if _, local := decls[fn]; local {
					out = append(out, fn)
				}
			}
			return true
		})
		return out
	}

	// Seed the walk with the exported constructors and record, for each
	// reachable function, which constructor pulls it in (for the message).
	via := map[types.Object]string{}
	var queue []types.Object
	for _, obj := range sortedDeclObjects(decls) {
		name := decls[obj].Name.Name
		if decls[obj].Recv == nil && ast.IsExported(name) &&
			(strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Must")) {
			via[obj] = name
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		for _, callee := range callees(decls[obj]) {
			if _, seen := via[callee]; !seen {
				via[callee] = via[obj]
				queue = append(queue, callee)
			}
		}
	}

	for _, obj := range sortedDeclObjects(decls) {
		root, reachable := via[obj]
		if !reachable {
			continue
		}
		fd := decls[obj]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			where := fd.Name.Name
			if where == root {
				pass.Reportf(call.Pos(),
					"panic in exported constructor %s; constructors return errors (PR 3 contract)", root)
			} else {
				pass.Reportf(call.Pos(),
					"panic in %s is reachable from exported constructor %s; return an error instead", where, root)
			}
			return true
		})
	}
	return nil, nil
}

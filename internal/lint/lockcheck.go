package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"cacheuniformity/internal/lint/analysis"
	"cacheuniformity/internal/lint/cfg"
)

// Lockcheck runs a forward dataflow over each function's control-flow
// graph tracking which sync.Mutex / sync.RWMutex locks are held, and
// enforces three invariants on the result:
//
//  1. release on all paths: a Lock/RLock must reach an Unlock/RUnlock
//     (directly or via defer) on every path to the function's exit — an
//     early return inside a critical section is the classic leaked-lock
//     bug;
//  2. no re-entry: calling Lock with the same lock already write-held on
//     every path to the call is a guaranteed self-deadlock (sync.Mutex
//     is not reentrant);
//  3. no blocking under a lock: a channel send/receive, a select without
//     a default, or a call into the known blocking set (time.Sleep,
//     WaitGroup.Wait, Cond.Wait, net/http round trips, net dials,
//     os file/dir I/O) while a lock is definitely held turns the lock's
//     other critical sections into waiters on that I/O — the contention
//     shape the resultstore/cluster hot paths must never have.
//
// The analysis is path-insensitive per lock (facts join as may-held for
// invariant 1 and must-held for 2 and 3, so each invariant errs toward
// its sound side), intraprocedural, and identifies locks by their dotted
// receiver path within the function ("s.mu", "t.state.mu").  Locks
// reached through indexing or calls have no stable identity and are not
// tracked.  `defer mu.Unlock()` (including inside a deferred function
// literal) discharges the release obligation for the rest of the
// function.
var Lockcheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "report locks not released on all paths, double-locks, and blocking calls under a held lock",
	Run:  runLockcheck,
}

// lockFact is the dataflow fact: for each lock path, the acquisition
// mode and position.  may holds locks held on SOME path into a point,
// must holds locks held on EVERY path; pending holds locks whose
// release at exit is still this function's responsibility — a
// `defer mu.Unlock()` removes the lock from pending (release is now
// guaranteed) while leaving it in may/must (it IS still held until
// return, so double-lock and blocking-under-lock keep applying).
type lockFact struct {
	may, must, pending lockSet
}

// lockSet maps lock path -> acquisition record, immutably: transfer
// functions copy before writing.
type lockSet map[string]lockAcq

type lockAcq struct {
	mode string // "w" or "r"
	pos  token.Pos
}

func (s lockSet) with(key string, a lockAcq) lockSet {
	out := make(lockSet, len(s)+1)
	for k, v := range s {
		out[k] = v
	}
	out[key] = a
	return out
}

func (s lockSet) without(key string) lockSet {
	if _, ok := s[key]; !ok {
		return s
	}
	out := make(lockSet, len(s))
	for k, v := range s {
		if k != key {
			out[k] = v
		}
	}
	return out
}

func (s lockSet) equal(o lockSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

func (s lockSet) union(o lockSet) lockSet {
	if len(o) == 0 {
		return s
	}
	out := make(lockSet, len(s)+len(o))
	for k, v := range s {
		out[k] = v
	}
	for k, v := range o {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func (s lockSet) intersect(o lockSet) lockSet {
	out := make(lockSet)
	for k, v := range s {
		if _, ok := o[k]; ok {
			out[k] = v
		}
	}
	return out
}

func runLockcheck(pass *analysis.Pass) (any, error) {
	forEachFunc(pass, func(u funcUnit) {
		checkLocksInFunc(pass, u)
	})
	return nil, nil
}

func checkLocksInFunc(pass *analysis.Pass, u funcUnit) {
	g := u.graph()

	// Locks discharged by defer anywhere in the function: once the defer
	// statement executes, release at exit is guaranteed, so the walk
	// below removes them at the defer site.  A deferred function literal
	// is scanned for unlock calls too (the mu.Lock(); defer func(){ ...
	// mu.Unlock() }() pattern).
	deferredUnlocks := func(d *ast.DeferStmt) []string {
		var keys []string
		record := func(call *ast.CallExpr) {
			if recv, _, acquire, ok := syncLockOp(pass, call); ok && !acquire {
				if key := exprPath(pass, recv); key != "" {
					keys = append(keys, key)
				}
			}
		}
		record(d.Call)
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					record(call)
				}
				return true
			})
		}
		return keys
	}

	// Comm clauses of selects WITH a default never block; collect their
	// statements so the blocking walk can skip them.
	nonBlockingComm := map[ast.Node]bool{}
	ast.Inspect(u.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(u.Lit) {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, c := range sel.Body.List {
				if comm := c.(*ast.CommClause).Comm; comm != nil {
					nonBlockingComm[comm] = true
				}
			}
		}
		return true
	})

	// One diagnostic per (position, message) so the fixpoint iteration
	// does not repeat itself.
	reported := map[string]bool{}
	reportf := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := fmt.Sprintf("%d:%s", pos, msg)
		if !reported[key] {
			reported[key] = true
			pass.Reportf(pos, "%s", msg)
		}
	}

	transferNode := func(n ast.Node, f lockFact) lockFact {
		// Statement-level walk: find lock ops, blocking ops, and defers
		// inside this node, skipping nested function literals (they get
		// their own analysis).
		ast.Inspect(n, func(inner ast.Node) bool {
			switch inner := inner.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				for _, key := range deferredUnlocks(inner) {
					f.pending = f.pending.without(key)
				}
				return false // the deferred call itself does not run here
			case *ast.CallExpr:
				if recv, mode, acquire, ok := syncLockOp(pass, inner); ok {
					key := exprPath(pass, recv)
					if key == "" {
						return true
					}
					if acquire {
						if held, ok := f.must[key]; ok && held.mode == "w" && mode == "w" {
							reportf(inner.Pos(), "%s.Lock: lock is already held on every path to this call (self-deadlock)", key)
						}
						acq := lockAcq{mode: mode, pos: inner.Pos()}
						f = lockFact{may: f.may.with(key, acq), must: f.must.with(key, acq), pending: f.pending.with(key, acq)}
					} else {
						f = lockFact{may: f.may.without(key), must: f.must.without(key), pending: f.pending.without(key)}
					}
					return true
				}
				if len(f.must) > 0 {
					if what := blockingCall(pass, inner); what != "" {
						reportf(inner.Pos(), "%s while holding %s", what, heldNames(f.must))
					}
				}
			case *ast.SendStmt:
				if len(f.must) > 0 && !nonBlockingComm[inner] {
					reportf(inner.Pos(), "channel send while holding %s", heldNames(f.must))
				}
			case *ast.UnaryExpr:
				if inner.Op == token.ARROW && len(f.must) > 0 && !commOf(n, nonBlockingComm) {
					reportf(inner.Pos(), "channel receive while holding %s", heldNames(f.must))
				}
			}
			return true
		})
		return f
	}

	in := cfg.Forward(g, cfg.Lattice[lockFact]{
		Bottom: func() lockFact { return lockFact{may: lockSet{}, must: lockSet{}, pending: lockSet{}} },
		Join: func(a, b lockFact) lockFact {
			return lockFact{may: a.may.union(b.may), must: a.must.intersect(b.must), pending: a.pending.union(b.pending)}
		},
		Equal: func(a, b lockFact) bool {
			return a.may.equal(b.may) && a.must.equal(b.must) && a.pending.equal(b.pending)
		},
		Transfer: func(b *cfg.Block, f lockFact) lockFact {
			for _, n := range b.Nodes {
				f = transferNode(n, f)
			}
			return f
		},
	})

	// Invariant 1: no release obligation may survive to a normal return.
	if exit, ok := in[g.Exit]; ok {
		for key, acq := range exit.pending {
			verb := "Lock"
			if acq.mode == "r" {
				verb = "RLock"
			}
			reportf(acq.pos, "%s.%s: lock is not released on every path to return (add the missing Unlock or defer it)", key, verb)
		}
	}
}

// commOf reports whether the receive expression's enclosing node is a
// non-blocking select comm clause statement.
func commOf(stmt ast.Node, nonBlocking map[ast.Node]bool) bool {
	return nonBlocking[stmt]
}

// heldNames renders the held lock set for a diagnostic, sorted for
// deterministic output.
func heldNames(s lockSet) string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// blockingCall classifies calls that park the goroutine (or wait on the
// outside world) long enough that holding a lock across them is a
// contention bug: timers, WaitGroup/Cond waits, HTTP round trips, net
// dials, and file-system I/O.  The set is deliberately explicit — a
// conservative list of what the repository's hot paths actually do —
// rather than "any call", which would flag every helper.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	switch pkg {
	case "time":
		if name == "Sleep" || name == "After" || name == "Tick" {
			return "time." + name
		}
	case "sync":
		if name == "Wait" { // (*WaitGroup).Wait, (*Cond).Wait
			return "sync wait"
		}
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "HTTP round trip"
		}
	case "net":
		if strings.HasPrefix(name, "Dial") || name == "Listen" || name == "Accept" {
			return "network " + name
		}
	case "os":
		switch name {
		case "ReadFile", "WriteFile", "Open", "Create", "CreateTemp", "OpenFile",
			"Rename", "Remove", "RemoveAll", "MkdirAll", "Mkdir", "ReadDir", "Stat":
			return "file I/O (os." + name + ")"
		case "Read", "Write", "Sync", "ReadFrom": // (*os.File) methods
			return "file I/O"
		}
	case "io":
		if name == "ReadAll" || name == "Copy" || name == "CopyN" {
			return "io." + name
		}
	case "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput", "Start":
			return "subprocess " + name
		}
	}
	return ""
}

// Package report renders experiment results as fixed-width text tables
// (the terminal counterpart of the paper's bar charts) and as CSV for
// external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-oriented result table: one row per benchmark,
// one column per scheme/series.
type Table struct {
	// Title is printed above the table (e.g. "Figure 4: % reduction in
	// miss rate").
	Title string
	// RowLabel names the first column ("benchmark").
	RowLabel string
	// Columns are the series names in display order.
	Columns []string
	rows    []row
}

type row struct {
	label  string
	values []float64
}

// NewTable creates a table with the given series columns.
func NewTable(title, rowLabel string, columns []string) *Table {
	return &Table{Title: title, RowLabel: rowLabel, Columns: append([]string(nil), columns...)}
}

// AddRow appends a row; values must align with Columns.
func (t *Table) AddRow(label string, values []float64) error {
	if len(values) != len(t.Columns) {
		return fmt.Errorf("report: row %q has %d values, table has %d columns", label, len(values), len(t.Columns))
	}
	t.rows = append(t.rows, row{label: label, values: append([]float64(nil), values...)})
	return nil
}

// MustAddRow is AddRow but panics on mismatch; for fixed experiment code.
func (t *Table) MustAddRow(label string, values []float64) {
	if err := t.AddRow(label, values); err != nil {
		panic(err)
	}
}

// AddAverageRow appends a row of per-column means over the existing rows,
// skipping NaN/Inf cells — the "Average" bar of the paper's figures.
func (t *Table) AddAverageRow(label string) {
	avg := make([]float64, len(t.Columns))
	for c := range t.Columns {
		sum, n := 0.0, 0
		for _, r := range t.rows {
			v := r.values[c]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sum += v
			n++
		}
		if n > 0 {
			avg[c] = sum / float64(n)
		}
	}
	t.rows = append(t.rows, row{label: label, values: avg})
}

// Rows returns the row count (including any average row).
func (t *Table) Rows() int { return len(t.rows) }

// Value returns the cell at (rowLabel, column), and whether it exists.
func (t *Table) Value(rowLabel, column string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.rows {
		if r.label == rowLabel {
			return r.values[ci], true
		}
	}
	return 0, false
}

// WriteText renders the table with aligned fixed-width columns.
func (t *Table) WriteText(w io.Writer) error {
	labelW := len(t.RowLabel)
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
		if colW[i] < 10 {
			colW[i] = 10
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	fmt.Fprintf(&b, "%-*s", labelW, t.RowLabel)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", colW[i], c)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", labelW+sum(colW)+2*len(colW)))
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", labelW, r.label)
		for i, v := range r.values {
			fmt.Fprintf(&b, "  %*s", colW[i], formatCell(v))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV with the row label in the first field.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(csvEscape(t.RowLabel))
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(csvEscape(r.label))
		for _, v := range r.values {
			b.WriteByte(',')
			if math.IsNaN(v) || math.IsInf(v, 0) {
				b.WriteString("")
			} else {
				fmt.Fprintf(&b, "%.4f", v)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.Abs(v) >= 10000:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCanonicalJSONSortsMapKeys(t *testing.T) {
	// Map iteration order is randomised per run; the canonical encoding
	// must not depend on it.  Encode many times and compare.
	m := map[string]int{"zebra": 1, "alpha": 2, "mid": 3, "b": 4, "a": 5}
	want := `{"a":5,"alpha":2,"b":4,"mid":3,"zebra":1}`
	for i := 0; i < 50; i++ {
		got, err := CanonicalJSON(m)
		if err != nil {
			t.Fatalf("CanonicalJSON: %v", err)
		}
		if string(got) != want {
			t.Fatalf("encoding %d: got %s, want %s", i, got, want)
		}
	}
}

func TestCanonicalJSONSortsStructFields(t *testing.T) {
	// Two structs with the same fields in different declaration order must
	// encode identically: the store key survives field reordering.
	type a struct {
		Z int    `json:"z"`
		A string `json:"a"`
	}
	type b struct {
		A string `json:"a"`
		Z int    `json:"z"`
	}
	ea, err := CanonicalJSON(a{Z: 7, A: "x"})
	if err != nil {
		t.Fatal(err)
	}
	eb, err := CanonicalJSON(b{A: "x", Z: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatalf("field order leaked: %s vs %s", ea, eb)
	}
	if want := `{"a":"x","z":7}`; string(ea) != want {
		t.Fatalf("got %s, want %s", ea, want)
	}
}

func TestCanonicalJSONNumberFormats(t *testing.T) {
	cases := []struct {
		in   string // raw JSON
		want string
	}{
		{`100`, `100`},
		{`100.0`, `100`},
		{`1e2`, `100`},
		{`0.5`, `0.5`},
		{`5e-1`, `0.5`},
		{`-0.25`, `-0.25`},
		{`18446744073709551615`, `18446744073709551615`}, // uint64 max: no float round-trip
		{`0.1`, `0.1`},
		{`1e21`, `1e+21`},
	}
	for _, c := range cases {
		var v any
		dec := json.NewDecoder(strings.NewReader(c.in))
		dec.UseNumber()
		if err := dec.Decode(&v); err != nil {
			t.Fatalf("decode %q: %v", c.in, err)
		}
		got, err := CanonicalJSON(v)
		if err != nil {
			t.Fatalf("CanonicalJSON(%q): %v", c.in, err)
		}
		if string(got) != c.want {
			t.Errorf("CanonicalJSON(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestCanonicalJSONNestedAndRoundTrip(t *testing.T) {
	type inner struct {
		Vals []float64         `json:"vals"`
		Tags map[string]string `json:"tags,omitempty"`
	}
	type outer struct {
		Name  string  `json:"name"`
		Ratio float64 `json:"ratio"`
		In    inner   `json:"in"`
		Null  *int    `json:"null"`
	}
	v := outer{
		Name:  "grid \"quoted\" / unicode é",
		Ratio: 0.30000000000000004, // classic non-terminating binary fraction
		In:    inner{Vals: []float64{1, 2.5, 3e10}, Tags: map[string]string{"b": "2", "a": "1"}},
	}
	got, err := CanonicalJSON(v)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical output must round-trip: decode and re-canonicalise to the
	// identical bytes (idempotence), and decode back to equal values.
	var back outer
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("unmarshal canonical output: %v", err)
	}
	if back.Ratio != v.Ratio {
		t.Fatalf("float round-trip lost precision: %v != %v", back.Ratio, v.Ratio)
	}
	again, err := CanonicalJSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, again) {
		t.Fatalf("not idempotent:\n%s\n%s", got, again)
	}
}

func TestCanonicalJSONRejectsNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := CanonicalJSON(v); err == nil {
			t.Errorf("CanonicalJSON(%v): want error, got nil", v)
		}
	}
}

func TestCanonicalJSONIndentMatchesCompact(t *testing.T) {
	v := map[string]any{"b": []int{1, 2}, "a": "x"}
	compact, err := CanonicalJSON(v)
	if err != nil {
		t.Fatal(err)
	}
	indented, err := CanonicalJSONIndent(v, "  ")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, indented); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(compact) {
		t.Fatalf("indent changed content:\n%s\n%s", buf.String(), compact)
	}
}

package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Canonical JSON: the deterministic encoding the result store hashes and
// the CLIs emit.  Two values that are semantically equal must encode to
// identical bytes, independent of map insertion order, struct field
// declaration order, or the float formatting heuristics of the Go version
// in use.  The rules:
//
//   - object keys (map keys and struct field names alike) are sorted
//     bytewise ascending;
//   - numbers use a fixed format: integer literals pass through verbatim,
//     everything else is re-rendered as the shortest decimal that parses
//     back to the same float64 (strconv 'g', precision -1);
//   - no insignificant whitespace;
//   - NaN and the infinities are rejected with an error, never silently
//     encoded (JSON cannot represent them and a lossy substitute would
//     poison a content-addressed key).
//
// The input passes through encoding/json first, so struct tags, Marshaler
// implementations and string escaping behave exactly as callers expect.

// CanonicalJSON encodes v as canonical JSON.
func CanonicalJSON(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("report: canonical json: %w", err)
	}
	var tree any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err = dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("report: canonical json: %w", err)
	}
	out, err := appendCanonical(nil, tree)
	if err != nil {
		return nil, fmt.Errorf("report: canonical json: %w", err)
	}
	return out, nil
}

// CanonicalJSONIndent is CanonicalJSON re-indented for human readers (the
// CLI output form); the canonical compact form plus insignificant
// whitespace, so the two differ only in layout.
func CanonicalJSONIndent(v any, indent string) ([]byte, error) {
	compact, err := CanonicalJSON(v)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, compact, "", indent); err != nil {
		return nil, fmt.Errorf("report: canonical json: %w", err)
	}
	return buf.Bytes(), nil
}

// appendCanonical renders one decoded JSON value onto b.
func appendCanonical(b []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(b, "null"...), nil
	case bool:
		return strconv.AppendBool(b, x), nil
	case string:
		// json.Marshal of a string is deterministic (fixed escaping rules).
		s, err := json.Marshal(x)
		if err != nil {
			return nil, err
		}
		return append(b, s...), nil
	case json.Number:
		return appendCanonicalNumber(b, x)
	case []any:
		b = append(b, '[')
		for i, e := range x {
			if i > 0 {
				b = append(b, ',')
			}
			var err error
			b, err = appendCanonical(b, e)
			if err != nil {
				return nil, err
			}
		}
		return append(b, ']'), nil
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b = append(b, '{')
		for i, k := range keys {
			if i > 0 {
				b = append(b, ',')
			}
			s, err := json.Marshal(k)
			if err != nil {
				return nil, err
			}
			b = append(b, s...)
			b = append(b, ':')
			b, err = appendCanonical(b, x[k])
			if err != nil {
				return nil, err
			}
		}
		return append(b, '}'), nil
	default:
		return nil, fmt.Errorf("unsupported value %T", v)
	}
}

// appendCanonicalNumber fixes the number format.  Integer literals (no
// fraction, no exponent) are already canonical as produced by
// encoding/json and pass through; anything else re-renders via the
// shortest-round-trip float format so "1e2", "100.0" and "100" written by
// different producers all canonicalise identically.
func appendCanonicalNumber(b []byte, n json.Number) ([]byte, error) {
	s := n.String()
	if !strings.ContainsAny(s, ".eE") {
		return append(b, s...), nil
	}
	f, err := n.Float64()
	if err != nil {
		return nil, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, fmt.Errorf("non-finite number %q", s)
	}
	out := strconv.AppendFloat(b, f, 'g', -1, 64)
	// A float that renders without fraction or exponent ("100") must not
	// collide with the integer spelling of a different producer — it IS the
	// integer spelling, which is exactly the collapse we want.
	return out, nil
}

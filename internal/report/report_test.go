package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableBasics(t *testing.T) {
	tbl := NewTable("Figure X", "benchmark", []string{"xor", "prime"})
	if err := tbl.AddRow("fft", []float64{86.1, 90.6}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("crc", []float64{0, -24}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddRow("bad", []float64{1}); err == nil {
		t.Error("mismatched row accepted")
	}
	tbl.AddAverageRow("Average")
	if tbl.Rows() != 3 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
	if v, ok := tbl.Value("Average", "xor"); !ok || math.Abs(v-43.05) > 1e-9 {
		t.Errorf("average xor = %v %v", v, ok)
	}
	if v, ok := tbl.Value("fft", "prime"); !ok || v != 90.6 {
		t.Errorf("cell = %v %v", v, ok)
	}
	if _, ok := tbl.Value("fft", "nosuch"); ok {
		t.Error("missing column found")
	}
	if _, ok := tbl.Value("nosuch", "xor"); ok {
		t.Error("missing row found")
	}
}

func TestAverageSkipsNonFinite(t *testing.T) {
	tbl := NewTable("", "b", []string{"s"})
	tbl.MustAddRow("a", []float64{10})
	tbl.MustAddRow("b", []float64{math.Inf(-1)})
	tbl.MustAddRow("c", []float64{math.NaN()})
	tbl.AddAverageRow("avg")
	if v, _ := tbl.Value("avg", "s"); v != 10 {
		t.Errorf("average with non-finite cells = %v", v)
	}
}

func TestMustAddRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow mismatch did not panic")
		}
	}()
	NewTable("", "b", []string{"a", "b"}).MustAddRow("x", []float64{1})
}

func TestWriteText(t *testing.T) {
	tbl := NewTable("Title", "bench", []string{"col"})
	tbl.MustAddRow("fft", []float64{12.345})
	tbl.MustAddRow("inf", []float64{math.Inf(1)})
	tbl.MustAddRow("big", []float64{1234567})
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Title", "bench", "col", "12.35", "+inf", "1.23e+06"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tbl := NewTable("", "bench", []string{"a,b", `q"c`})
	tbl.MustAddRow("fft", []float64{1.5, math.NaN()})
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"a,b"`) || !strings.Contains(out, `"q""c"`) {
		t.Errorf("CSV escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, "fft,1.5000,\n") {
		t.Errorf("CSV row wrong:\n%s", out)
	}
}

package cacheuniformity

import (
	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/assoc"
	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/hier"
	"cacheuniformity/internal/indexing"
	"cacheuniformity/internal/smt"
)

// Test fixtures.  The production constructors return errors so callers can
// validate configs; tests and benchmarks build known-good fixtures and want
// one-liners, so these panic on the (impossible) error instead.

func mustCache(cfg cache.Config) *cache.Cache {
	c, err := cache.New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func mustHier(cfg hier.Config) *hier.Hierarchy {
	h, err := hier.New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

func mustAdaptiveCache(l addr.Layout, idx indexing.Func, cfg assoc.AdaptiveConfig) *assoc.AdaptiveCache {
	a, err := assoc.NewAdaptiveCache(l, idx, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

func mustBCache(l addr.Layout, cfg assoc.BCacheConfig) *assoc.BCache {
	b, err := assoc.NewBCache(l, cfg)
	if err != nil {
		panic(err)
	}
	return b
}

func mustColumnAssociative(l addr.Layout, idx indexing.Func) *assoc.ColumnAssociative {
	c, err := assoc.NewColumnAssociative(l, idx)
	if err != nil {
		panic(err)
	}
	return c
}

func mustSharedIndexCache(l addr.Layout, funcs []indexing.Func) *smt.SharedIndexCache {
	s, err := smt.NewSharedIndexCache(l, funcs)
	if err != nil {
		panic(err)
	}
	return s
}

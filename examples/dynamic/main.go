// Dynamic: run the runtime index selector (the executable form of the
// paper's Figure-5 proposal) against the best static scheme on a workload
// with a phase change, printing the selector's switching behaviour.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/assoc"
	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/trace"
	"cacheuniformity/internal/workload"
)

func main() {
	layout := addr.MustLayout(32, 1024, 32)

	// Two program phases with different conflict structure.
	var phased trace.Trace
	phased = append(phased, workload.MustLookup("sha").Generate(1, 200_000)...)
	phased = append(phased, workload.MustLookup("susan").Generate(1, 200_000)...)

	baseline, err := cache.New(cache.Config{Layout: layout, Ways: 1, WriteAllocate: true})
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := assoc.NewDynamicIndexCache(layout, assoc.DefaultDynamicCandidates(layout), assoc.DynamicConfig{})
	if err != nil {
		log.Fatal(err)
	}

	bctr := cache.Run(baseline, phased)
	dctr := cache.Run(dynamic, phased)

	fmt.Printf("phased workload: sha then susan (%d accesses)\n\n", len(phased))
	fmt.Printf("baseline (modulo, static)  miss rate %.4f\n", bctr.MissRate())
	fmt.Printf("dynamic index selection    miss rate %.4f\n", dctr.MissRate())
	fmt.Printf("selector switched %d time(s); live index at end: %s\n", dynamic.Switches, dynamic.Live())
	fmt.Printf("reduction vs baseline: %.1f%%\n",
		100*(bctr.MissRate()-dctr.MissRate())/bctr.MissRate())
}

// Indexing comparison: evaluate every Section-II index function on a
// chosen benchmark, including the trace-profiled Givargis schemes, and
// print miss rates and uniformity statistics — a miniature of the paper's
// Figure 4 for one application.
//
//	go run ./examples/indexing          # defaults to fft
//	go run ./examples/indexing basicmath
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"cacheuniformity/internal/core"
	"cacheuniformity/internal/stats"
)

func main() {
	bench := "fft"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	cfg := core.Default()
	cfg.TraceLength = 300_000

	schemes := append([]string{"baseline"}, core.IndexingSchemes...)
	grid, err := core.Grid(context.Background(), cfg, schemes, []string{bench})
	if err != nil {
		log.Fatal(err)
	}
	row := grid[bench]
	base := row["baseline"]

	fmt.Printf("%-16s %10s %12s %12s %10s\n", "scheme", "miss rate", "%reduction", "kurt(miss)", "LAS%")
	for _, name := range schemes {
		r := row[name]
		if r.Err != nil {
			log.Fatalf("%s: %v", name, r.Err)
		}
		red := stats.PercentReduction(base.MissRate, r.MissRate)
		if name == "baseline" {
			red = 0
		}
		fmt.Printf("%-16s %10.4f %11.1f%% %12.2f %9.1f%%\n",
			name, r.MissRate, red, r.MissMoments.Kurtosis, r.Classification.LASPercent())
	}
	fmt.Println("\nThe paper's takeaway: no single indexing scheme wins on every")
	fmt.Println("application — rerun with another benchmark name to see the ranking flip.")
}

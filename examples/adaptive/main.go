// Adaptive: drive the three programmable-associativity schemes through a
// full two-level hierarchy and report measured average access times and
// the paper's closed-form AMAT (Eqs. 8-9) side by side.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/assoc"
	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/hier"
	"cacheuniformity/internal/workload"
)

// must aborts the example on a constructor config error.
func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	l1 := addr.MustLayout(32, 1024, 32)  // 32 KiB direct-mapped equivalent
	l2l := addr.MustLayout(32, 1024, 32) // 256 KiB = 1024 sets × 8 ways

	tr := workload.MustLookup("rijndael").Generate(1, 400_000)

	models := []struct {
		name  string
		build func() cache.Model
		amat  func(c cache.Counters, p float64) float64
	}{
		{"baseline (DM)", func() cache.Model {
			return must(cache.New(cache.Config{Layout: l1, Ways: 1, WriteAllocate: true}))
		}, func(c cache.Counters, p float64) float64 {
			return hier.AMATSimple(c, hier.DefaultLatencies, p)
		}},
		{"adaptive", func() cache.Model {
			return must(assoc.NewAdaptiveCache(l1, nil, assoc.AdaptiveConfig{}))
		}, hier.AMATAdaptive},
		{"b_cache", func() cache.Model {
			return must(assoc.NewBCache(l1, assoc.BCacheConfig{}))
		}, func(c cache.Counters, p float64) float64 {
			return hier.AMATSimple(c, hier.DefaultLatencies, p)
		}},
		{"column_assoc", func() cache.Model {
			return must(assoc.NewColumnAssociative(l1, nil))
		}, hier.AMATColumnAssociative},
	}

	fmt.Printf("%-16s %10s %14s %14s %12s\n", "scheme", "miss rate", "measured CPA", "eq. AMAT", "L2 missrate")
	for _, m := range models {
		l1d := m.build()
		l2 := must(cache.New(cache.Config{Layout: l2l, Ways: 8, WriteAllocate: true}))
		h, err := hier.New(hier.Config{L1D: l1d, L2: l2})
		if err != nil {
			log.Fatal(err)
		}
		measured := h.Run(tr)
		ctr := l1d.Counters()
		eq := m.amat(ctr, h.EffectiveMissPenalty())
		fmt.Printf("%-16s %10.4f %14.3f %14.3f %12.4f\n",
			m.name, ctr.MissRate(), measured, eq, l2.Counters().MissRate())
	}
	fmt.Println("\nmeasured CPA = cycles per access through the live two-level hierarchy;")
	fmt.Println("eq. AMAT     = the paper's closed-form equations with the measured L2 penalty.")
}

// Quickstart: simulate one benchmark on the paper's baseline cache and on
// XOR indexing, and print the miss rates side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/indexing"
	"cacheuniformity/internal/workload"
)

func main() {
	// The paper's L1: 32 KiB, direct mapped, 32-byte blocks → 1024 sets.
	layout := addr.MustLayout(32, 1024, 32)

	// A synthetic trace modelling the MiBench sha benchmark.
	tr := workload.MustLookup("sha").Generate(1, 500_000)

	baseline, err := cache.New(cache.Config{Layout: layout, Ways: 1, WriteAllocate: true})
	if err != nil {
		log.Fatal(err)
	}
	xor, err := cache.New(cache.Config{
		Layout: layout, Ways: 1, Index: indexing.NewXOR(layout), WriteAllocate: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	base := cache.Run(baseline, tr)
	hashed := cache.Run(xor, tr)

	fmt.Printf("benchmark: sha (%d accesses)\n", len(tr))
	fmt.Printf("baseline (modulo) miss rate: %.4f\n", base.MissRate())
	fmt.Printf("XOR indexing      miss rate: %.4f\n", hashed.MissRate())
	fmt.Printf("reduction: %.1f%%\n", 100*(base.MissRate()-hashed.MissRate())/base.MissRate())
}

// Multithreaded: reproduce the Figure-13 mechanism on one workload pair —
// two benchmarks share an L1 (round-robin interleaved, SMT style), first
// both with conventional indexing, then each with its own odd multiplier.
//
//	go run ./examples/multithreaded
package main

import (
	"fmt"
	"log"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cache"
	"cacheuniformity/internal/indexing"
	"cacheuniformity/internal/smt"
	"cacheuniformity/internal/trace"
	"cacheuniformity/internal/workload"
)

func main() {
	layout := addr.MustLayout(32, 1024, 32)

	// Two threads: fft and susan, interleaved one access per "cycle".
	fft := workload.MustLookup("fft").Generate(1, 250_000)
	susan := workload.MustLookup("susan").Generate(2, 250_000)
	mix, err := trace.Collect(trace.RoundRobin(fft.NewReader(), susan.NewReader()), 0)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: both threads index conventionally.
	base, err := smt.NewSharedIndexCache(layout, []indexing.Func{
		indexing.NewModulo(layout),
		indexing.NewModulo(layout),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Paper's proposal: a different odd multiplier per thread.
	mixed, err := smt.NewSharedIndexCache(layout, []indexing.Func{
		indexing.MustOddMultiplier(layout, 9),
		indexing.MustOddMultiplier(layout, 21),
	})
	if err != nil {
		log.Fatal(err)
	}

	bc := cache.Run(base, mix)
	mc := cache.Run(mixed, mix)

	fmt.Printf("shared L1, 2 threads (fft + susan), %d accesses\n", len(mix))
	fmt.Printf("conventional indexing for both: miss rate %.4f\n", bc.MissRate())
	fmt.Printf("odd multipliers 9 and 21:       miss rate %.4f\n", mc.MissRate())
	fmt.Printf("reduction: %.1f%%\n", 100*(bc.MissRate()-mc.MissRate())/bc.MissRate())
}

// Command simload drives a simd fleet with a Zipf-skewed cell workload
// and checks every answer for cross-node consistency: the same cell
// served by different nodes (or the same node at different times) must
// return byte-identical result JSON.  It is the measurement half of the
// cluster robustness story — kill a node mid-run and simload reports
// whether the fleet stayed correct (wrong answers) and available (error
// rate, latency percentiles).
//
// Usage:
//
//	simload -targets http://127.0.0.1:8971,http://127.0.0.1:8972 \
//	    -n 100000 -c 32 -cells 64 -skew 1.1
//
// The cell working set is deterministic given the flags: cell i draws
// its scheme and benchmark round-robin from -schemes × -benchmarks and
// its workload seed from -seed + i, so two simload runs (or a golden
// single-node run via -golden-out and a later cluster run via
// -golden-in) request exactly the same cells.
//
// -report bench emits a `go test -bench`-style line that cmd/benchjson
// parses, so Makefile targets can gate p99 latency and error budgets
// the same way they gate allocation budgets.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cacheuniformity/internal/cli"
	"cacheuniformity/internal/rng"
)

func main() {
	targetsFlag := flag.String("targets", "", "comma-separated simd base URLs; requests round-robin across them (required)")
	n := flag.Int("n", 10_000, "total requests to send")
	c := flag.Int("c", 16, "concurrent workers")
	cells := flag.Int("cells", 64, "distinct cells in the working set")
	skew := flag.Float64("skew", 1.1, "Zipf exponent of cell popularity (0 = uniform)")
	sweep := flag.Bool("sweep", false, "request every cell once, in order, before the Zipf schedule — a -golden-out run needs full coverage, which a skewed draw cannot promise")
	seed := flag.Uint64("seed", 1, "base seed; cell i uses workload seed -seed + i, and the Zipf draw sequence derives from it")
	length := flag.Int("len", 2000, "trace_length requested per cell (kept small so cold cells are cheap)")
	schemesFlag := flag.String("schemes", "baseline,xor", "comma-separated scheme names cycled across cells")
	benchmarksFlag := flag.String("benchmarks", "crc,fft", "comma-separated benchmark names cycled across cells")
	timeout := flag.Duration("timeout", 15*time.Second, "per-request timeout, covering retries of that request")
	retries := flag.Int("retries", 3, "extra attempts per request on 5xx or transport errors, failing over to the next target and honoring Retry-After")
	errorBudget := flag.Float64("error-budget", 1, "max tolerated fraction of failed requests before exiting 1 (1 = no gate)")
	report := flag.String("report", "text", "output format: text, or bench (a go test -bench line for benchjson)")
	goldenOut := flag.String("golden-out", "", "write the observed cell identities (key + result hash) to this JSON file")
	goldenIn := flag.String("golden-in", "", "check every answer against the cell identities in this JSON file")
	adminEvery := flag.Int("admin-every", 0, "admin-mix mode: after every N cell requests fire an admin operation, alternating DELETE /v1/cell of the requested cell and POST /v1/gc — evictions must only cause recomputes, never break golden consistency (0 = off)")
	flag.Parse()

	if *targetsFlag == "" {
		fatal(fmt.Errorf("-targets is required"))
	}
	var targets []string
	for _, t := range strings.Split(*targetsFlag, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targets = append(targets, strings.TrimRight(t, "/"))
		}
	}
	if len(targets) == 0 {
		fatal(fmt.Errorf("-targets lists no URLs"))
	}
	if *n <= 0 || *c <= 0 || *cells <= 0 {
		fatal(fmt.Errorf("-n, -c, and -cells must be positive"))
	}

	ctx, cancel := cli.RunContext(0)
	defer cancel()

	specs, err := buildCells(*cells, strings.Split(*schemesFlag, ","), strings.Split(*benchmarksFlag, ","), *seed, *length)
	if err != nil {
		fatal(err)
	}
	checker := newChecker(specs)
	if *goldenIn != "" {
		if err := checker.loadGolden(*goldenIn); err != nil {
			fatal(err)
		}
	}

	// The full request schedule is drawn up front from one seeded Zipf
	// sampler, so the cell sequence is identical run to run no matter how
	// the workers interleave.  -sweep prepends one visit to every cell.
	schedule := make([]int, 0, *n+len(specs))
	if *sweep {
		for i := range specs {
			schedule = append(schedule, i)
		}
	}
	z := rng.NewZipf(rng.New(*seed), *skew, len(specs))
	for i := 0; i < *n; i++ {
		schedule = append(schedule, z.Next())
	}

	client := &http.Client{}
	var (
		mu        sync.Mutex
		latencies []int64
		okCount   int
		errCount  int
		adminOps  int
		adminErrs int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		jitter := rng.New(*seed + 7919*uint64(w+1)) // retry jitter only; never affects which cells are asked
		go func(src *rng.Source) {
			defer wg.Done()
			for i := range work {
				spec := specs[schedule[i]]
				elapsed, err := doRequest(ctx, client, src, targets, i, spec, checker, *timeout, *retries)
				mu.Lock()
				if err != nil {
					errCount++
				} else {
					okCount++
					latencies = append(latencies, elapsed.Nanoseconds())
				}
				mu.Unlock()
				if *adminEvery > 0 && i%*adminEvery == 0 {
					aerr := doAdmin(ctx, client, targets, i, (i / *adminEvery)%2 == 0, spec, *timeout)
					mu.Lock()
					adminOps++
					if aerr != nil {
						adminErrs++
					}
					mu.Unlock()
				}
			}
		}(jitter)
	}
	for i := 0; i < len(schedule) && ctx.Err() == nil; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	if *goldenOut != "" {
		if err := checker.writeGolden(*goldenOut); err != nil {
			fatal(err)
		}
	}

	wrong := checker.wrong()
	sent := okCount + errCount
	errRate := 0.0
	if sent > 0 {
		errRate = float64(errCount) / float64(sent)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50, p99, p999 := percentile(latencies, 0.50), percentile(latencies, 0.99), percentile(latencies, 0.999)
	reqPerSec := float64(sent) / wall.Seconds()
	okFrac := 1 - errRate

	switch *report {
	case "bench":
		// One line in go test -bench grammar so benchjson can gate it:
		// iteration count, then value/unit pairs.
		fmt.Printf("BenchmarkSimload %d %d ns/op %d p50_ns %d p99_ns %d p999_ns %.6f ok_frac %.1f req/s %d wrong_total %d admin_ops %d admin_errs\n",
			sent, mean(latencies), p50, p99, p999, okFrac, reqPerSec, wrong, adminOps, adminErrs)
	default:
		fmt.Printf("simload: %d requests in %s (%.1f req/s) against %d targets\n", sent, wall.Round(time.Millisecond), reqPerSec, len(targets))
		fmt.Printf("simload: %d ok, %d errors (%.3f%%), %d wrong answers\n", okCount, errCount, errRate*100, wrong)
		if adminOps > 0 {
			fmt.Printf("simload: %d admin ops (%d failed)\n", adminOps, adminErrs)
		}
		fmt.Printf("simload: latency p50 %s  p99 %s  p999 %s\n",
			time.Duration(p50), time.Duration(p99), time.Duration(p999))
	}

	if wrong > 0 {
		fmt.Fprintf(os.Stderr, "simload: FAIL: %d wrong answers\n", wrong)
		os.Exit(1)
	}
	if errRate > *errorBudget {
		fmt.Fprintf(os.Stderr, "simload: FAIL: error rate %.4f exceeds budget %.4f\n", errRate, *errorBudget)
		os.Exit(1)
	}
}

// cellSpec is one member of the working set, with its request body
// prebuilt.  deleteBody is the same cell addressed for DELETE /v1/cell
// (no include_per_set — the delete grammar takes only the identity).
type cellSpec struct {
	label      string
	body       []byte
	deleteBody []byte
}

// buildCells lays out the deterministic working set: cell i cycles
// scheme and benchmark and takes workload seed base + i, so every cell
// keys to a distinct store entry even when names repeat.  Every fourth
// cell asks for the raw per-set distributions, exercising both response
// shapes.
func buildCells(n int, schemes, benchmarks []string, base uint64, length int) ([]cellSpec, error) {
	clean := func(in []string) []string {
		var out []string
		for _, s := range in {
			if s = strings.TrimSpace(s); s != "" {
				out = append(out, s)
			}
		}
		return out
	}
	schemes, benchmarks = clean(schemes), clean(benchmarks)
	if len(schemes) == 0 || len(benchmarks) == 0 {
		return nil, fmt.Errorf("simload: -schemes and -benchmarks must name at least one entry each")
	}
	type cellConfig struct {
		Seed        uint64 `json:"seed"`
		TraceLength int    `json:"trace_length"`
	}
	specs := make([]cellSpec, n)
	for i := range specs {
		scheme := schemes[i%len(schemes)]
		bench := benchmarks[(i/len(schemes))%len(benchmarks)]
		cellSeed := base + uint64(i)
		perSet := i%4 == 0
		body, err := json.Marshal(struct {
			Scheme        string     `json:"scheme"`
			Benchmark     string     `json:"benchmark"`
			Config        cellConfig `json:"config"`
			IncludePerSet bool       `json:"include_per_set,omitempty"`
		}{
			Scheme:        scheme,
			Benchmark:     bench,
			Config:        cellConfig{cellSeed, length},
			IncludePerSet: perSet,
		})
		if err != nil {
			return nil, err
		}
		deleteBody, err := json.Marshal(struct {
			Scheme    string     `json:"scheme"`
			Benchmark string     `json:"benchmark"`
			Config    cellConfig `json:"config"`
		}{scheme, bench, cellConfig{cellSeed, length}})
		if err != nil {
			return nil, err
		}
		specs[i] = cellSpec{
			label:      fmt.Sprintf("%s/%s/seed%d/perset%t", scheme, bench, cellSeed, perSet),
			body:       body,
			deleteBody: deleteBody,
		}
	}
	return specs, nil
}

// doAdmin fires one admin-mix operation: a DELETE /v1/cell evicting the
// cell just requested, or a POST /v1/gc collecting toward the server's
// quota target.  One attempt, no retries — the mix is chaos injection,
// not traffic to keep available; the soak's assertion is that the data
// plane's golden consistency survives it.
func doAdmin(ctx context.Context, client *http.Client, targets []string, i int, del bool,
	spec cellSpec, timeout time.Duration) error {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	method, path, body := http.MethodPost, "/v1/gc", []byte("{}")
	if del {
		method, path, body = http.MethodDelete, "/v1/cell", spec.deleteBody
	}
	req, err := http.NewRequestWithContext(rctx, method, targets[i%len(targets)]+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("simload: admin %s %s: %s", method, path, resp.Status)
	}
	return nil
}

// doRequest performs one cell request with bounded retries.  Request i
// starts on target i mod len(targets) and each retry fails over to the
// next target, so a dead node costs its share of requests one attempt —
// not the whole request.  5xx and transport errors retry after
// max(Retry-After, jittered pause); 4xx is terminal (the request itself
// is wrong, another attempt answers the same).  A 200 whose body fails
// the consistency check counts as wrong in the checker but as success
// here — availability and correctness are reported separately.
func doRequest(ctx context.Context, client *http.Client, src *rng.Source, targets []string, i int,
	spec cellSpec, ch *checker, timeout time.Duration, retries int) (time.Duration, error) {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	started := time.Now()
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		target := targets[(i+attempt)%len(targets)]
		if attempt > 0 {
			pause := time.Duration(25+src.Intn(50)) * time.Millisecond
			if ra := lastRetryAfter(lastErr); ra > pause {
				pause = ra
			}
			timer := time.NewTimer(pause)
			select {
			case <-timer.C:
			case <-rctx.Done():
				timer.Stop()
				return 0, rctx.Err()
			}
		}
		req, err := http.NewRequestWithContext(rctx, http.MethodPost, target+"/v1/cell", bytes.NewReader(spec.body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		_ = resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			ch.observe(spec.label, data)
			return time.Since(started), nil
		case resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests:
			return 0, fmt.Errorf("simload: %s: %s", spec.label, resp.Status)
		default:
			lastErr = &statusError{status: resp.Status, retryAfter: parseRetryAfter(resp.Header)}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("simload: out of attempts")
	}
	return 0, lastErr
}

// statusError carries a retryable status and its Retry-After hint.
type statusError struct {
	status     string
	retryAfter time.Duration
}

func (e *statusError) Error() string { return "simload: server answered " + e.status }

func lastRetryAfter(err error) time.Duration {
	if se, ok := err.(*statusError); ok {
		return se.retryAfter
	}
	return 0
}

func parseRetryAfter(h http.Header) time.Duration {
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// checker pins each cell to the first identity observed for it — the
// response key plus a hash of the canonical result JSON — and counts
// every later disagreement as a wrong answer.  With -golden-in the
// identities are pinned up front from a trusted run instead.
type checker struct {
	mu     sync.Mutex
	seen   map[string]cellIdentity
	golden bool
	bad    int
}

type cellIdentity struct {
	Key    string `json:"key"`
	SHA256 string `json:"sha256"`
}

func newChecker(specs []cellSpec) *checker {
	return &checker{seen: make(map[string]cellIdentity, len(specs))}
}

// observe records or checks the identity of one 200 response.
func (c *checker) observe(label string, data []byte) {
	var reply struct {
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(data, &reply); err != nil || reply.Key == "" || len(reply.Result) == 0 {
		c.mu.Lock()
		c.bad++
		c.mu.Unlock()
		return
	}
	sum := sha256.Sum256(reply.Result)
	id := cellIdentity{Key: reply.Key, SHA256: hex.EncodeToString(sum[:])}
	c.mu.Lock()
	defer c.mu.Unlock()
	prev, ok := c.seen[label]
	if !ok {
		if c.golden {
			// Golden mode pins every cell up front; an unknown label means
			// the golden file does not match this workload.
			c.bad++
			return
		}
		c.seen[label] = id
		return
	}
	if prev != id {
		c.bad++
	}
}

func (c *checker) wrong() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bad
}

func (c *checker) writeGolden(path string) error {
	c.mu.Lock()
	data, err := json.MarshalIndent(c.seen, "", "  ")
	c.mu.Unlock()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func (c *checker) loadGolden(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	seen := map[string]cellIdentity{}
	if err := json.Unmarshal(data, &seen); err != nil {
		return fmt.Errorf("simload: golden %s: %w", path, err)
	}
	c.mu.Lock()
	c.seen, c.golden = seen, true
	c.mu.Unlock()
	return nil
}

// percentile reads the q-quantile from an ascending slice (0 for an
// empty one).
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func mean(vals []int64) int64 {
	if len(vals) == 0 {
		return 0
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return sum / int64(len(vals))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simload:", err)
	os.Exit(1)
}

// Command cachesim runs a single benchmark through a single cache scheme
// and reports miss rate, AMAT and the per-set uniformity statistics the
// paper studies.
//
// Usage:
//
//	cachesim -bench fft -scheme xor
//	cachesim -bench sha -scheme column_associative -len 1000000
//	cachesim -list                      # available benchmarks and schemes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cli"
	"cacheuniformity/internal/core"
	"cacheuniformity/internal/report"
	"cacheuniformity/internal/sim"
	"cacheuniformity/internal/stats"
	"cacheuniformity/internal/workload"
)

// runConfig executes a JSON sim.Spec and prints the JSON report.
func runConfig(ctx context.Context, path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
	defer f.Close()
	spec, err := sim.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
	rep, err := spec.RunContext(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
	// Canonical encoding: the same spec always prints byte-identical JSON,
	// so runs can be diffed and content-addressed.
	data, err := report.CanonicalJSONIndent(rep, "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", data)
}

func main() {
	bench := flag.String("bench", "fft", "benchmark name")
	scheme := flag.String("scheme", "baseline", "cache scheme name")
	length := flag.Int("len", 300_000, "trace length")
	seed := flag.Uint64("seed", 0, "workload seed (0 = paper default)")
	blockBytes := flag.Int("blockbytes", 32, "L1 block size in bytes")
	sets := flag.Int("sets", 1024, "L1 set count")
	penalty := flag.Float64("penalty", 20, "L1 miss penalty in cycles")
	hist := flag.Bool("hist", false, "print the per-set access histogram (Figure 1 view)")
	list := flag.Bool("list", false, "list benchmarks and schemes, then exit")
	seeds := flag.Int("seeds", 1, "replicate over N seeds and report miss-rate mean ± std")
	config := flag.String("config", "", "run a JSON simulation spec (see internal/sim) and print a JSON report")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	flag.Parse()

	ctx, cancel := cli.RunContext(*timeout)
	defer cancel()

	if *config != "" {
		runConfig(ctx, *config)
		return
	}

	if *list {
		fmt.Println("benchmarks (mibench):", strings.Join(workload.Names(workload.MiBench), " "))
		fmt.Println("benchmarks (spec2006):", strings.Join(workload.Names(workload.SPEC2006), " "))
		fmt.Println("schemes:", strings.Join(core.SchemeNames(""), " "))
		return
	}

	layout, err := addr.NewLayout(*blockBytes, *sets, 32)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(2)
	}
	cfg := core.Default()
	cfg.Layout = layout
	cfg.TraceLength = *length
	cfg.MissPenalty = *penalty
	if *seed != 0 {
		cfg.Seed = *seed
	}

	if *seeds > 1 {
		sum, sumErr := core.MissRateAcrossSeeds(ctx, cfg, *scheme, *bench, *seeds)
		if sumErr != nil {
			fmt.Fprintln(os.Stderr, "cachesim:", sumErr)
			os.Exit(1)
		}
		fmt.Printf("benchmark        %s\n", *bench)
		fmt.Printf("scheme           %s\n", *scheme)
		fmt.Printf("seeds            %d\n", sum.Seeds)
		fmt.Printf("miss rate        %.4f ± %.4f (min %.4f, max %.4f)\n", sum.Mean, sum.Std, sum.Min, sum.Max)
		return
	}

	res, err := core.RunOne(ctx, cfg, *scheme, *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}

	c := res.Counters
	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("scheme           %s\n", res.Scheme)
	fmt.Printf("accesses         %d\n", c.Accesses)
	fmt.Printf("hits             %d (primary %d, secondary %d)\n", c.Hits, c.PrimaryHits, c.SecondaryHits)
	fmt.Printf("misses           %d (with secondary probe %d)\n", c.Misses, c.SecondaryProbeMisses)
	fmt.Printf("evictions        %d (writebacks %d)\n", c.Evictions, c.Writebacks)
	fmt.Printf("miss rate        %.4f\n", res.MissRate)
	fmt.Printf("AMAT             %.3f cycles (miss penalty %.0f)\n", res.AMAT, cfg.MissPenalty)
	fmt.Printf("access kurtosis  %.3f   skewness %.3f\n", res.AccessMoments.Kurtosis, res.AccessMoments.Skewness)
	fmt.Printf("miss   kurtosis  %.3f   skewness %.3f\n", res.MissMoments.Kurtosis, res.MissMoments.Skewness)
	fmt.Printf("set classes      FHS %.1f%%  FMS %.1f%%  LAS %.1f%%\n",
		res.Classification.FHSPercent(), res.Classification.FMSPercent(), res.Classification.LASPercent())
	fmt.Printf("gini             %.3f   entropy %.3f\n",
		stats.Gini(res.PerSet.Accesses), stats.NormalizedEntropy(res.PerSet.Accesses))
	fmt.Printf("sets <1/2 avg    %.2f%%   sets >=2x avg %.2f%%\n",
		100*stats.FractionBelow(res.PerSet.Accesses, 0.5),
		100*stats.FractionAtLeast(res.PerSet.Accesses, 2))
	if *hist {
		fmt.Println("\nper-set access histogram:")
		fmt.Print(stats.NewHistogram(res.PerSet.Accesses, 16).Render(60))
	}
}

// Command tracegen writes a synthetic benchmark trace to disk in the
// binary or text format of package trace, for replay by cmd/uniformity or
// external tools.  The trace is streamed from the generator straight into
// the encoder in batches, so files of any -len are produced in constant
// memory.
//
// Usage:
//
//	tracegen -bench fft -len 1000000 -o fft.trace
//	tracegen -bench sha -format text -o sha.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"cacheuniformity/internal/cli"
	"cacheuniformity/internal/trace"
	"cacheuniformity/internal/workload"
)

func main() {
	bench := flag.String("bench", "fft", "benchmark name")
	length := flag.Int("len", 300_000, "trace length")
	seed := flag.Uint64("seed", 1, "workload seed")
	out := flag.String("o", "", "output file (default <bench>.trace)")
	format := flag.String("format", "binary", "output format: binary, compact or text")
	timeout := flag.Duration("timeout", 0, "abort generation after this duration (0 = none); a partial file is removed")
	flag.Parse()

	ctx, cancel := cli.RunContext(*timeout)
	defer cancel()

	spec, err := workload.Lookup(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = *bench + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	var n int
	r := spec.StreamCtx(ctx, *seed, *length)
	switch *format {
	case "binary":
		n, err = trace.EncodeBinary(f, r)
	case "compact":
		n, err = trace.EncodeCompact(f, r)
	case "text":
		n, err = trace.EncodeText(f, r)
	default:
		err = fmt.Errorf("unknown format %q (want binary, compact or text)", *format)
	}
	if err != nil {
		// An interrupted encode leaves a truncated file: remove it rather
		// than leave a trace that silently replays short.
		_ = f.Close()
		_ = os.Remove(path)
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		if ctx.Err() != nil {
			os.Exit(130)
		}
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d accesses to %s (%s)\n", n, path, *format)
}

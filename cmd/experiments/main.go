// Command experiments regenerates the paper's figures (1, 4, 6-14) from
// the reproduction's simulators and prints them as text tables or CSV.
//
// Usage:
//
//	experiments                  # run every figure
//	experiments -fig 4           # one figure
//	experiments -fig 4 -csv      # CSV output for plotting
//	experiments -len 1000000     # longer traces
//	experiments -blockbytes 8    # the paper's Givargis block-size ablation
//	experiments -roster examples/rosters/temperature.json
//
// A -roster file replaces the fixed figures with a declared sweep:
// schemes and benchmarks as registry declarations (catalog names or
// kind+params compositions), evaluated as one grid and printed as a
// miss-rate matrix.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cli"
	"cacheuniformity/internal/core"
	"cacheuniformity/internal/experiments"
	"cacheuniformity/internal/report"
	"cacheuniformity/internal/resultstore"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to run (0 = all of 1, 4, 5, 6..14)")
	length := flag.Int("len", 300_000, "trace length per benchmark")
	seed := flag.Uint64("seed", 0, "workload seed (0 = paper default)")
	blockBytes := flag.Int("blockbytes", 32, "L1 block size in bytes")
	sets := flag.Int("sets", 1024, "L1 set count")
	penalty := flag.Float64("penalty", 20, "L1 miss penalty in cycles")
	parallel := flag.Int("parallel", 0, "max concurrent benchmark workers in the fan-out grid (0 = GOMAXPROCS); peak memory grows with this, not with -len")
	percell := flag.Bool("percell", false, "use the legacy per-cell grid engine (one generator pass per scheme×benchmark cell)")
	cacheDir := flag.String("cache", "", "result-store directory: reuse previously simulated cells and persist new ones (incremental figure regeneration)")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	rosterFlag := flag.String("roster", "", "run the declared scheme × benchmark roster (JSON file) instead of the figures")
	sweep := flag.String("sweep", "", "run the geometry-sensitivity sweep for this benchmark instead of the figures")
	classes := flag.String("classes", "", "print Zhang's FHS/FMS/LAS classification table for this scheme instead of the figures")
	hybrids := flag.Bool("hybrids", false, "run the adaptive-cache indexing hybrids (the paper's stated exploration) instead of the figures")
	compileTraces := flag.Bool("compile-traces", false, "compile each benchmark's access trace once and replay the cached artifact for every scheme (persisted under -cache when set)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at the end of the run")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none); figures finished before the deadline are still printed")
	flag.Parse()

	ctx, cancel := cli.RunContext(*timeout)
	defer cancel()

	stopProfiles, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	defer stopProfiles()

	layout, err := addr.NewLayout(*blockBytes, *sets, 32)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	cfg := core.Default()
	cfg.Layout = layout
	cfg.TraceLength = *length
	cfg.MissPenalty = *penalty
	cfg.Parallelism = *parallel
	cfg.PerCell = *percell
	if *seed != 0 {
		cfg.Seed = *seed
	}
	var store *resultstore.Store
	if *cacheDir != "" {
		store, err = resultstore.Open(resultstore.Options{Dir: *cacheDir, CompileTraces: *compileTraces})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		cfg.Memo = store
		if *compileTraces {
			// Artifacts persist under -cache/traces and outlive the run.
			cfg.Traces = store
		}
	} else if *compileTraces {
		cfg.Traces = core.NewMemTraceCache(0)
	}

	emit := func(tbl *report.Table) {
		var err error
		if *csv {
			err = tbl.WriteCSV(os.Stdout)
		} else {
			err = tbl.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *rosterFlag != "" {
		roster, schemes, benches, err := cli.LoadRoster(*rosterFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		grid, gridErr := cli.RosterGrid(ctx, cfg, store, roster, schemes, benches)
		if grid == nil {
			fmt.Fprintln(os.Stderr, "experiments:", gridErr)
			os.Exit(1)
		}
		names := make([]string, len(schemes))
		for i, s := range schemes {
			names[i] = s.Name
		}
		tbl := report.NewTable(fmt.Sprintf("miss rate by scheme (%s)", *rosterFlag), "benchmark", names)
		failed := 0
		for _, b := range benches {
			vals := make([]float64, len(names))
			for i, n := range names {
				cell := grid[b.Name][n]
				if cell.Err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %s/%s: %v\n", b.Name, n, cell.Err)
					failed++
					vals[i] = math.NaN()
					continue
				}
				vals[i] = cell.MissRate
			}
			tbl.MustAddRow(b.Name, vals)
		}
		emit(tbl)
		if gridErr != nil {
			fmt.Fprintln(os.Stderr, "experiments: run stopped early:", gridErr)
			os.Exit(130)
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %d cell(s) failed\n", failed)
			os.Exit(1)
		}
		return
	}
	if *sweep != "" {
		tbl, err := experiments.GeometrySweep(ctx, cfg, *sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		emit(tbl)
		return
	}
	if *classes != "" {
		tbl, err := experiments.UniformityClasses(ctx, cfg, *classes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		emit(tbl)
		return
	}
	if *hybrids {
		tbl, err := experiments.AdaptiveHybrids(ctx, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		emit(tbl)
		return
	}

	figs := experiments.All()
	if *fig != 0 {
		f, err := experiments.ByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		figs = []experiments.Figure{f}
	}
	for i, f := range figs {
		tbl, err := f.Run(ctx, cfg)
		if err != nil {
			// Figures printed before a deadline or ^C stay on stdout; the
			// interrupted one reports why the run stopped early.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(os.Stderr, "experiments: figure %d: run stopped early: %v\n", f.ID, err)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "experiments: figure %d: %v\n", f.ID, err)
			os.Exit(1)
		}
		if *csv {
			if err := tbl.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		} else {
			if err := tbl.WriteText(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
		if i < len(figs)-1 {
			fmt.Println()
		}
	}
}

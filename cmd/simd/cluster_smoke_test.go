package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildClusterBins compiles the simd and simload binaries once into dir.
func buildClusterBins(t *testing.T, dir string) (simd, simload string) {
	t.Helper()
	simd = filepath.Join(dir, "simd")
	simload = filepath.Join(dir, "simload")
	for bin, pkg := range map[string]string{simd: ".", simload: "../simload"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return simd, simload
}

// nodeProc is one simd subprocess plus the base URL it announced.
type nodeProc struct {
	cmd  *exec.Cmd
	base string
	done chan struct{} // closed once the process exits
	err  error         // cmd.Wait result; valid after done is closed
}

// startNode launches a simd subprocess and parses its listen line.  The
// rest of its output is drained in the background so the process never
// blocks on a full pipe.
func startNode(t *testing.T, bin string, args ...string) *nodeProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	node := &nodeProc{cmd: cmd, done: make(chan struct{})}
	t.Cleanup(func() { cmd.Process.Kill(); <-node.done })

	reader := bufio.NewReader(stdout)
	line, err := reader.ReadString('\n')
	if err != nil {
		cmd.Process.Kill()
		t.Fatalf("reading listen line: %v", err)
	}
	const prefix = "simd: listening on "
	if !strings.HasPrefix(line, prefix) {
		cmd.Process.Kill()
		t.Fatalf("unexpected first line %q", line)
	}
	node.base = "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))
	go func() {
		io.Copy(io.Discard, reader)
		node.err = cmd.Wait()
		close(node.done)
	}()
	return node
}

// waitExit requires the node to exit cleanly within the deadline.
func (n *nodeProc) waitExit(t *testing.T, what string, deadline time.Duration) {
	t.Helper()
	select {
	case <-n.done:
		if n.err != nil {
			t.Fatalf("%s exited non-zero: %v", what, n.err)
		}
	case <-time.After(deadline):
		n.cmd.Process.Kill()
		t.Fatalf("%s did not exit within %s", what, deadline)
	}
}

// waitReadyz polls /v1/readyz until it answers 200.
func waitReadyz(t *testing.T, base string, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		resp, err := http.Get(base + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never became ready within %s", base, deadline)
}

// freePorts reserves n distinct loopback ports by binding and releasing
// them.  The cluster needs its peer list before any node starts, so the
// usual listen-on-:0 trick cannot work; the tiny window between release
// and the node's own bind is acceptable in a test.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	listeners := make([]net.Listener, n)
	ports := make([]int, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return ports
}

// clusterRequests reads the soak scale: the Makefile's smoke-cluster
// target sets SIMD_CLUSTER_REQUESTS=100000 for the full kill-a-node
// soak; the default keeps `go test ./cmd/simd` quick.
func clusterRequests(t *testing.T) int {
	t.Helper()
	env := os.Getenv("SIMD_CLUSTER_REQUESTS")
	if env == "" {
		return 4_000
	}
	n, err := strconv.Atoi(env)
	if err != nil || n <= 0 {
		t.Fatalf("SIMD_CLUSTER_REQUESTS=%q is not a positive integer", env)
	}
	return n
}

// simloadArgs is the workload shape shared by every phase, so the golden
// run and the cluster runs request exactly the same cells.
func simloadArgs(targets []string, n int, extra ...string) []string {
	args := []string{
		"-targets", strings.Join(targets, ","),
		"-n", strconv.Itoa(n),
		"-c", "12",
		"-cells", "32",
		"-skew", "1.1",
		"-seed", "1",
		"-len", "2000",
	}
	return append(args, extra...)
}

// TestClusterSmoke is the end-to-end cluster story the Makefile's
// smoke-cluster target runs at soak scale: a golden single node pins the
// correct answer for every cell, a 3-node fleet serves the same Zipf mix
// with one node SIGKILLed mid-run (zero wrong answers, error budget
// 0.5%), a second node SIGTERMs into an observable drain (readyz 503,
// exit 0), and the last survivor still answers the whole keyspace.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster smoke test")
	}
	dir := t.TempDir()
	simdBin, simloadBin := buildClusterBins(t, dir)
	requests := clusterRequests(t)

	// Phase 0 — golden: one plain node answers the full working set and
	// simload records each cell's identity (key + result hash).
	golden := filepath.Join(dir, "golden.json")
	gnode := startNode(t, simdBin,
		"-addr", "127.0.0.1:0",
		"-cache", filepath.Join(dir, "golden-store"),
		"-len", "2000", "-sets", "64",
	)
	goldenLoad := exec.Command(simloadBin, simloadArgs([]string{gnode.base}, 200,
		"-sweep", "-golden-out", golden)...)
	if out, err := goldenLoad.CombinedOutput(); err != nil {
		t.Fatalf("golden simload: %v\n%s", err, out)
	}
	gnode.cmd.Process.Signal(syscall.SIGTERM)
	gnode.waitExit(t, "golden node", 15*time.Second)

	// Phase 1 — fleet: three nodes, fully meshed over pre-reserved ports.
	ports := freePorts(t, 3)
	urls := make([]string, 3)
	for i, p := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	peers := strings.Join(urls, ",")
	nodes := make([]*nodeProc, 3)
	for i := range nodes {
		nodes[i] = startNode(t, simdBin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-cache", filepath.Join(dir, fmt.Sprintf("store-%d", i)),
			"-len", "2000", "-sets", "64",
			"-peers", peers, "-self", urls[i],
			"-linger", "500ms",
		)
	}
	for _, node := range nodes {
		waitReadyz(t, node.base, 10*time.Second)
	}

	// Phase 2 — kill-a-node soak: the full mix against all three nodes,
	// checked cell-by-cell against the golden identities, with node 2
	// SIGKILLed while the load runs.  Hard kill, no drain: forwards to it
	// fail over, its keyspace share is absorbed, and the error budget
	// (0.5%) plus zero-wrong-answers must hold regardless.
	soak := exec.Command(simloadBin, simloadArgs(urls, requests,
		"-golden-in", golden, "-error-budget", "0.005")...)
	soakOut := &strings.Builder{}
	soak.Stdout, soak.Stderr = soakOut, soakOut
	if err := soak.Start(); err != nil {
		t.Fatal(err)
	}
	soakDone := make(chan error, 1)
	go func() { soakDone <- soak.Wait() }()

	time.Sleep(100 * time.Millisecond)
	midRun := true
	select {
	case err := <-soakDone:
		// The quick run can finish before the kill lands; the soak scale
		// (SIMD_CLUSTER_REQUESTS=100000) guarantees the overlap.
		midRun = false
		soakDone <- err
	default:
	}
	nodes[2].cmd.Process.Kill()
	<-nodes[2].done
	t.Logf("node 2 SIGKILLed (mid-run: %v)", midRun)

	select {
	case err := <-soakDone:
		if err != nil {
			t.Fatalf("soak simload failed: %v\n%s", err, soakOut)
		}
	case <-time.After(5 * time.Minute):
		soak.Process.Kill()
		t.Fatalf("soak simload did not finish\n%s", soakOut)
	}
	t.Logf("soak: %s", strings.TrimSpace(soakOut.String()))

	// Phase 3 — observable drain: SIGTERM node 1 and catch its linger
	// window, where readyz already answers 503 + Retry-After but the
	// process has not yet closed its listener.
	nodes[1].cmd.Process.Signal(syscall.SIGTERM)
	sawDrain := false
	for i := 0; i < 20 && !sawDrain; i++ {
		resp, err := http.Get(nodes[1].base + "/v1/readyz")
		if err != nil {
			break // listener already closed; the drain window was missed
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("draining readyz answered 503 without Retry-After")
			}
			sawDrain = true
		}
		resp.Body.Close()
		time.Sleep(20 * time.Millisecond)
	}
	if !sawDrain {
		t.Error("never observed readyz 503 during the 500ms linger window")
	}
	nodes[1].waitExit(t, "drained node", 15*time.Second)

	// Phase 4 — rebalance: the lone survivor owns the entire keyspace
	// and must answer the whole working set, still golden-consistent.
	rebalance := exec.Command(simloadBin, simloadArgs([]string{nodes[0].base}, 400,
		"-golden-in", golden, "-error-budget", "0.005")...)
	if out, err := rebalance.CombinedOutput(); err != nil {
		t.Fatalf("rebalance simload: %v\n%s", err, out)
	}

	// The survivor's metrics must expose the per-peer cluster families.
	resp, err := http.Get(nodes[0].base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"simd_peer_forwards_total", "simd_peer_breaker_opens_total", "simd_store_peer_fills_total"} {
		if !strings.Contains(string(metrics), family) {
			t.Errorf("metrics missing %s", family)
		}
	}

	nodes[0].cmd.Process.Signal(syscall.SIGTERM)
	nodes[0].waitExit(t, "survivor node", 15*time.Second)
	fmt.Println("cluster smoke: golden -> 3-node soak (SIGKILL) -> drain (SIGTERM) -> rebalance")
}

// TestSmokeSaturation: a deliberately tiny node (-workers 1 -queue 1)
// under a concurrent burst must shed with 503 + Retry-After — bounded
// queueing, not collapse — while still answering what it admits.
func TestSmokeSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess saturation test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "simd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	node := startNode(t, bin,
		"-addr", "127.0.0.1:0",
		"-len", "200000", "-sets", "64",
		"-workers", "1", "-queue", "1",
	)

	const burst = 6
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ok, shed int
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"scheme":"xor","benchmark":"crc","config":{"seed":%d}}`, seed+1)
			resp, err := http.Post(node.base+"/v1/cell", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("burst request %d: %v", seed, err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("503 without Retry-After")
				}
				shed++
			default:
				t.Errorf("burst request %d: unexpected status %d", seed, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if ok == 0 {
		t.Error("saturated node answered nothing")
	}
	if shed == 0 {
		t.Error("no request was shed; the burst never saturated the queue")
	}
	t.Logf("saturation: %d ok, %d shed", ok, shed)

	node.cmd.Process.Signal(syscall.SIGTERM)
	node.waitExit(t, "saturated node", 15*time.Second)
}

// TestClusterBench emits the simload bench line for benchjson, gated
// behind SIMD_CLUSTER_BENCH=1 so only the Makefile's bench-cluster
// target pays for it: a healthy 3-node fleet, the standard Zipf mix,
// and one `BenchmarkSimload ...` line on stdout.
func TestClusterBench(t *testing.T) {
	if os.Getenv("SIMD_CLUSTER_BENCH") == "" {
		t.Skip("set SIMD_CLUSTER_BENCH=1 to run the cluster bench")
	}
	dir := t.TempDir()
	simdBin, simloadBin := buildClusterBins(t, dir)
	requests := clusterRequests(t)

	ports := freePorts(t, 3)
	urls := make([]string, 3)
	for i, p := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	peers := strings.Join(urls, ",")
	nodes := make([]*nodeProc, 3)
	for i := range nodes {
		nodes[i] = startNode(t, simdBin,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-cache", filepath.Join(dir, fmt.Sprintf("store-%d", i)),
			"-len", "2000", "-sets", "64",
			"-peers", peers, "-self", urls[i],
		)
	}
	for _, node := range nodes {
		waitReadyz(t, node.base, 10*time.Second)
	}

	load := exec.Command(simloadBin, simloadArgs(urls, requests, "-report", "bench")...)
	out, err := load.CombinedOutput()
	if err != nil {
		t.Fatalf("bench simload: %v\n%s", err, out)
	}
	// Re-emit the bench line verbatim so `go test -v | benchjson` sees it.
	fmt.Print(string(out))

	for _, node := range nodes {
		node.cmd.Process.Signal(syscall.SIGTERM)
		node.waitExit(t, "bench node", 15*time.Second)
	}
}

// Command simd serves the simulator over HTTP, backed by the
// content-addressed result store: the first request for an experiment
// simulates it, every later request — across restarts, when -cache is
// set — is a cache lookup.
//
// Usage:
//
//	simd -addr 127.0.0.1:8971 -cache results/
//
//	curl -s localhost:8971/v1/schemes
//	curl -s -X POST localhost:8971/v1/cell \
//	    -d '{"scheme":"xor","benchmark":"fft"}'
//	curl -s -X POST localhost:8971/v1/grid \
//	    -d '{"schemes":["baseline","xor"],"benchmarks":["crc","fft"]}'
//
// The process drains gracefully on SIGINT/SIGTERM: in-flight requests
// get -drain to finish, then the listener closes and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"strings"
	"time"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cli"
	"cacheuniformity/internal/cluster"
	"cacheuniformity/internal/core"
	"cacheuniformity/internal/resultstore"
	"cacheuniformity/internal/server"
)

func main() {
	listen := flag.String("addr", "127.0.0.1:8971", "address to listen on (host:0 picks a free port)")
	cacheDir := flag.String("cache", "", "result-store directory (empty = in-memory only; entries there survive restarts)")
	memEntries := flag.Int("mem", 0, "in-memory store entries (0 = default, negative = disable the memory tier)")
	workers := flag.Int("workers", 0, "max requests simulating concurrently (0 = GOMAXPROCS)")
	reqTimeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request simulation deadline")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit in bytes")
	drain := flag.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	length := flag.Int("len", 300_000, "default trace length per benchmark (requests may override)")
	seed := flag.Uint64("seed", 0, "default workload seed (0 = paper default)")
	blockBytes := flag.Int("blockbytes", 32, "default L1 block size in bytes")
	sets := flag.Int("sets", 1024, "default L1 set count")
	penalty := flag.Float64("penalty", 20, "default L1 miss penalty in cycles")
	parallel := flag.Int("parallel", 0, "max concurrent benchmark workers per grid request (0 = GOMAXPROCS)")
	compileTraces := flag.Bool("compile-traces", false, "compile each benchmark's access trace once and replay the cached artifact on later requests (persisted under -cache when set)")
	pprofFlag := flag.Bool("pprof", false, "expose Go's /debug/pprof profiling endpoints on the same listener")
	peersFlag := flag.String("peers", "", "comma-separated advertised URLs of every cluster node, including this one (empty = single node)")
	selfFlag := flag.String("self", "", "this node's advertised URL; must appear in -peers")
	queueDepth := flag.Int("queue", 0, "max requests waiting for a worker before shedding 503 (0 = 4 × workers)")
	linger := flag.Duration("linger", 0, "pause between flipping /v1/readyz not-ready and closing the listener, so peers and load balancers observe the drain")
	hedgeAfter := flag.Duration("hedge-after", cluster.DefaultHedgeAfter, "latency budget before a forwarded cell is hedged to the next-ranked peer (negative disables hedging)")
	peerTimeout := flag.Duration("peer-timeout", cluster.DefaultAttemptTimeout, "per-attempt timeout for forwarded cells")
	peerAttempts := flag.Int("peer-attempts", cluster.DefaultMaxAttempts, "attempt budget per forwarded cell, across retries and hedges")
	breakerFailures := flag.Int("breaker-failures", cluster.DefaultBreakerFailures, "consecutive failures that open a peer's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", cluster.DefaultBreakerCooldown, "how long an open breaker rejects a peer before probing it again")
	quota := flag.Int64("quota", 0, "on-disk store byte quota across manifests and trace artifacts, enforced by LRU disk GC (0 = unbounded)")
	gcInterval := flag.Duration("gc-interval", 0, "background disk-GC period; each run evicts toward the quota's steady-state level (0 = on-demand and write-pressure GC only)")
	deepScrub := flag.Bool("deep-scrub", false, "make the startup scrub decode every artifact and drop unreadable ones, instead of only sweeping temp files and orphans")
	flag.Parse()

	ctx, cancel := cli.RunContext(0)
	defer cancel()

	layout, err := addr.NewLayout(*blockBytes, *sets, 32)
	if err != nil {
		fatal(err)
	}
	cfg := core.Default()
	cfg.Layout = layout
	cfg.TraceLength = *length
	cfg.MissPenalty = *penalty
	cfg.Parallelism = *parallel
	if *seed != 0 {
		cfg.Seed = *seed
	}

	store, err := resultstore.Open(resultstore.Options{
		Dir:           *cacheDir,
		MemoryEntries: *memEntries,
		CompileTraces: *compileTraces,
		QuotaBytes:    *quota,
		DeepScrub:     *deepScrub,
	})
	if err != nil {
		fatal(err)
	}
	if *gcInterval > 0 && *cacheDir != "" {
		go runGCLoop(ctx, store, *gcInterval)
	}
	var cl *cluster.Cluster
	if *peersFlag != "" {
		var peers []string
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		cl, err = cluster.New(cluster.Config{
			Self:            *selfFlag,
			Peers:           peers,
			AttemptTimeout:  *peerTimeout,
			HedgeAfter:      *hedgeAfter,
			MaxAttempts:     *peerAttempts,
			BreakerFailures: *breakerFailures,
			BreakerCooldown: *breakerCooldown,
			Seed:            *seed,
		})
		if err != nil {
			fatal(err)
		}
		defer cl.Close()
	}

	srv, err := server.New(server.Config{
		Store:          store,
		Sim:            cfg,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *reqTimeout,
		MaxConcurrent:  *workers,
		MaxQueueDepth:  *queueDepth,
		Cluster:        cl,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	// The smoke test parses this exact line to find the ephemeral port.
	fmt.Printf("simd: listening on %s\n", ln.Addr())
	if cl != nil {
		fmt.Printf("simd: cluster of %d as %s\n", cl.Size(), cl.Self())
		// The probe sweep runs off the serve path: /v1/readyz answers
		// not-ready until it completes, but /v1/cell works immediately.
		go cl.Probe(ctx)
	}

	// The API handler stays pprof-free; profiling endpoints are grafted on
	// here, gated by -pprof, so a production deployment never exposes them
	// by accident.
	handler := srv.Handler()
	if *pprofFlag {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		handler = mux
	}

	// The HTTP server deliberately does not inherit the signal context:
	// shutdown must let in-flight requests drain, not cancel them; the
	// drain deadline below is the backstop.
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}

	// Flip readiness first so load balancers and forwarding peers stop
	// sending new work, linger so they can observe it, then close the
	// listener and drain what is already in flight.
	srv.StartDrain()
	fmt.Printf("simd: draining (up to %s)\n", *drain)
	if *linger > 0 {
		time.Sleep(*linger)
	}
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), *drain)
	defer shutdownCancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	fmt.Println("simd: bye")
}

// runGCLoop evicts toward the quota's steady-state level every interval
// until shutdown.  Target 0 means "the quota's default"; on an unbounded
// store each run is a usage-reporting no-op, so enabling the flag
// without -quota is harmless.
func runGCLoop(ctx context.Context, store *resultstore.Store, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rep := store.GC(0)
			if rep.Evicted > 0 {
				fmt.Printf("simd: gc evicted %d artifacts (%d bytes), %d/%d bytes used\n",
					rep.Evicted, rep.ReclaimedBytes, rep.BytesUsed, rep.QuotaBytes)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}

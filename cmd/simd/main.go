// Command simd serves the simulator over HTTP, backed by the
// content-addressed result store: the first request for an experiment
// simulates it, every later request — across restarts, when -cache is
// set — is a cache lookup.
//
// Usage:
//
//	simd -addr 127.0.0.1:8971 -cache results/
//
//	curl -s localhost:8971/v1/schemes
//	curl -s -X POST localhost:8971/v1/cell \
//	    -d '{"scheme":"xor","benchmark":"fft"}'
//	curl -s -X POST localhost:8971/v1/grid \
//	    -d '{"schemes":["baseline","xor"],"benchmarks":["crc","fft"]}'
//
// The process drains gracefully on SIGINT/SIGTERM: in-flight requests
// get -drain to finish, then the listener closes and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"time"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cli"
	"cacheuniformity/internal/core"
	"cacheuniformity/internal/resultstore"
	"cacheuniformity/internal/server"
)

func main() {
	listen := flag.String("addr", "127.0.0.1:8971", "address to listen on (host:0 picks a free port)")
	cacheDir := flag.String("cache", "", "result-store directory (empty = in-memory only; entries there survive restarts)")
	memEntries := flag.Int("mem", 0, "in-memory store entries (0 = default, negative = disable the memory tier)")
	workers := flag.Int("workers", 0, "max requests simulating concurrently (0 = GOMAXPROCS)")
	reqTimeout := flag.Duration("request-timeout", server.DefaultRequestTimeout, "per-request simulation deadline")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit in bytes")
	drain := flag.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	length := flag.Int("len", 300_000, "default trace length per benchmark (requests may override)")
	seed := flag.Uint64("seed", 0, "default workload seed (0 = paper default)")
	blockBytes := flag.Int("blockbytes", 32, "default L1 block size in bytes")
	sets := flag.Int("sets", 1024, "default L1 set count")
	penalty := flag.Float64("penalty", 20, "default L1 miss penalty in cycles")
	parallel := flag.Int("parallel", 0, "max concurrent benchmark workers per grid request (0 = GOMAXPROCS)")
	compileTraces := flag.Bool("compile-traces", false, "compile each benchmark's access trace once and replay the cached artifact on later requests (persisted under -cache when set)")
	pprofFlag := flag.Bool("pprof", false, "expose Go's /debug/pprof profiling endpoints on the same listener")
	flag.Parse()

	ctx, cancel := cli.RunContext(0)
	defer cancel()

	layout, err := addr.NewLayout(*blockBytes, *sets, 32)
	if err != nil {
		fatal(err)
	}
	cfg := core.Default()
	cfg.Layout = layout
	cfg.TraceLength = *length
	cfg.MissPenalty = *penalty
	cfg.Parallelism = *parallel
	if *seed != 0 {
		cfg.Seed = *seed
	}

	store, err := resultstore.Open(resultstore.Options{
		Dir:           *cacheDir,
		MemoryEntries: *memEntries,
		CompileTraces: *compileTraces,
	})
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{
		Store:          store,
		Sim:            cfg,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *reqTimeout,
		MaxConcurrent:  *workers,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	// The smoke test parses this exact line to find the ephemeral port.
	fmt.Printf("simd: listening on %s\n", ln.Addr())

	// The API handler stays pprof-free; profiling endpoints are grafted on
	// here, gated by -pprof, so a production deployment never exposes them
	// by accident.
	handler := srv.Handler()
	if *pprofFlag {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		handler = mux
	}

	// The HTTP server deliberately does not inherit the signal context:
	// shutdown must let in-flight requests drain, not cancel them; the
	// drain deadline below is the backstop.
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Printf("simd: draining (up to %s)\n", *drain)
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), *drain)
	defer shutdownCancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal(err)
	}
	fmt.Println("simd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simd:", err)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestAdminMixSmoke is the admin-chaos story end to end: a golden run
// against a plain node pins every cell's answer, then the same mix is
// replayed against a quota-bounded node with `simload -admin-every`
// firing DELETE /v1/cell and POST /v1/gc into the stream.  Deletions
// and forced collections may only cause recomputes — every answer must
// stay golden-consistent — and the admin surface must be visible in
// /v1/storestats afterwards.
func TestAdminMixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess admin smoke test")
	}
	dir := t.TempDir()
	simdBin, simloadBin := buildClusterBins(t, dir)

	golden := filepath.Join(dir, "golden.json")
	gnode := startNode(t, simdBin,
		"-addr", "127.0.0.1:0",
		"-cache", filepath.Join(dir, "golden-store"),
		"-len", "2000", "-sets", "64",
	)
	goldenLoad := exec.Command(simloadBin, simloadArgs([]string{gnode.base}, 200,
		"-sweep", "-golden-out", golden)...)
	if out, err := goldenLoad.CombinedOutput(); err != nil {
		t.Fatalf("golden simload: %v\n%s", err, out)
	}
	gnode.cmd.Process.Signal(syscall.SIGTERM)
	gnode.waitExit(t, "golden node", 15*time.Second)

	// The chaos node: a tight quota so write-pressure GC fires during
	// the run, a fast background sweep, and a fast touch cadence.
	node := startNode(t, simdBin,
		"-addr", "127.0.0.1:0",
		"-cache", filepath.Join(dir, "admin-store"),
		"-len", "2000", "-sets", "64",
		"-quota", "65536", "-gc-interval", "200ms",
	)
	load := exec.Command(simloadBin, simloadArgs([]string{node.base}, 800,
		"-golden-in", golden, "-admin-every", "7")...)
	out, err := load.CombinedOutput()
	if err != nil {
		t.Fatalf("admin-mix simload: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "admin ops") {
		t.Fatalf("simload never reported admin operations:\n%s", out)
	}
	t.Logf("admin mix: %s", strings.TrimSpace(string(out)))

	// The store stayed within its quota and saw the admin traffic.
	resp, err := http.Get(node.base + "/v1/storestats")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("storestats: status %d err %v", resp.StatusCode, err)
	}
	var stats struct {
		Stats struct {
			BytesUsed  int64 `json:"bytes_used"`
			QuotaBytes int64 `json:"quota_bytes"`
		} `json:"stats"`
		Counters struct {
			AdminDeletes uint64 `json:"admin_deletes"`
			GCRuns       uint64 `json:"gc_runs"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("storestats body: %v\n%s", err, body)
	}
	if stats.Stats.QuotaBytes != 65536 || stats.Stats.BytesUsed > stats.Stats.QuotaBytes {
		t.Errorf("store over quota: %+v", stats.Stats)
	}
	if stats.Counters.AdminDeletes == 0 {
		t.Error("admin mix never landed a deletion")
	}
	if stats.Counters.GCRuns == 0 {
		t.Error("quota pressure and forced collections never ran GC")
	}

	node.cmd.Process.Signal(syscall.SIGTERM)
	node.waitExit(t, "admin node", 15*time.Second)
}

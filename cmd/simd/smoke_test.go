package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSmoke is the end-to-end proof the Makefile's ci target relies on:
// build the real binary, serve on an ephemeral port, observe that the
// second identical request is a cache hit, then SIGTERM and verify a
// clean drain (exit 0).
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "simd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-cache", filepath.Join(dir, "store"),
		"-len", "2000",
		"-sets", "64",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout // single stream; keep ordering
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	// The first stdout line announces the bound address.
	reader := bufio.NewReader(stdout)
	line, err := reader.ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	const prefix = "simd: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected first line %q", line)
	}
	base := "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))

	origin := func(n int) string {
		t.Helper()
		resp, err := http.Post(base+"/v1/cell", "application/json",
			strings.NewReader(`{"scheme":"xor","benchmark":"crc"}`))
		if err != nil {
			t.Fatalf("request %d: %v", n, err)
		}
		defer resp.Body.Close()
		var reply struct {
			Origin string `json:"origin"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatalf("request %d: decode: %v", n, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", n, resp.StatusCode)
		}
		return reply.Origin
	}
	if got := origin(1); got != "computed" {
		t.Fatalf("first request origin = %q, want computed", got)
	}
	if got := origin(2); got != "memory" {
		t.Fatalf("second request origin = %q, want memory (cache hit)", got)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("simd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("simd did not exit within 15s of SIGTERM")
	}

	// Across a restart the disk tier serves the same cell.
	cmd2 := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-cache", filepath.Join(dir, "store"),
		"-len", "2000",
		"-sets", "64",
	)
	stdout2, err := cmd2.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	line2, err := bufio.NewReader(stdout2).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	base = "http://" + strings.TrimSpace(strings.TrimPrefix(line2, prefix))
	if got := origin(3); got != "disk" {
		t.Fatalf("post-restart origin = %q, want disk", got)
	}
	fmt.Println("smoke: computed -> memory -> restart -> disk")
}

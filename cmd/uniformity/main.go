// Command uniformity replays a stored trace (from cmd/tracegen) through a
// chosen scheme and reports the access-uniformity analysis of the paper's
// Section IV-C/D: per-set distribution shape, FHS/FMS/LAS classes, and an
// ASCII histogram.  The trace is streamed from disk in batches — files of
// any length replay in constant memory, and profile-driven schemes simply
// read the file twice.
//
// Usage:
//
//	tracegen -bench fft -o fft.trace
//	uniformity -trace fft.trace -scheme baseline
//	uniformity -trace fft.trace -scheme xor
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/cli"
	"cacheuniformity/internal/core"
	"cacheuniformity/internal/stats"
	"cacheuniformity/internal/trace"
)

// fileStream ties a decoding BatchReader to its underlying file so
// trace.CloseBatch releases the descriptor.
type fileStream struct {
	trace.BatchReader
	f *os.File
}

func (s fileStream) Close() error { return s.f.Close() }

// openTrace opens the file and sniffs the three formats in order: binary,
// compact, text.  (The binary and compact decoders validate their headers
// on construction, so a wrong guess fails immediately and we rewind.)
func openTrace(path string) (trace.BatchReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if br, err := trace.NewBinaryBatchReader(f); err == nil {
		return fileStream{br, f}, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		_ = f.Close()
		return nil, err
	}
	if br, err := trace.NewCompactBatchReader(f); err == nil {
		return fileStream{br, f}, nil
	}
	if _, err := f.Seek(0, 0); err != nil {
		_ = f.Close()
		return nil, err
	}
	return fileStream{trace.NewTextBatchReader(f), f}, nil
}

func main() {
	path := flag.String("trace", "", "trace file (binary, compact or text format)")
	scheme := flag.String("scheme", "baseline", "cache scheme name")
	blockBytes := flag.Int("blockbytes", 32, "L1 block size in bytes")
	sets := flag.Int("sets", 1024, "L1 set count")
	buckets := flag.Int("buckets", 16, "histogram buckets")
	window := flag.Int("window", 0, "if > 0, also print the per-window kurtosis time series (phase view)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	flag.Parse()

	ctx, cancel := cli.RunContext(*timeout)
	defer cancel()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "uniformity: -trace is required")
		os.Exit(2)
	}
	// Fail fast on an unopenable file before any simulation starts.
	if probe, err := openTrace(*path); err != nil {
		fmt.Fprintln(os.Stderr, "uniformity:", err)
		os.Exit(1)
	} else {
		trace.CloseBatch(probe)
	}
	sf := trace.StreamFunc(func() trace.BatchReader {
		r, err := openTrace(*path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uniformity:", err)
			os.Exit(1)
		}
		return r
	})

	layout, err := addr.NewLayout(*blockBytes, *sets, 32)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uniformity:", err)
		os.Exit(2)
	}
	cfg := core.Default()
	cfg.Layout = layout

	res, err := core.RunStream(ctx, cfg, *scheme, *path, sf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uniformity:", err)
		os.Exit(1)
	}

	acc := res.PerSet.Accesses
	fmt.Printf("trace            %s (%d accesses)\n", *path, res.Counters.Accesses)
	fmt.Printf("scheme           %s\n", res.Scheme)
	fmt.Printf("miss rate        %.4f\n", res.MissRate)
	fmt.Printf("access kurtosis  %.3f   skewness %.3f\n", res.AccessMoments.Kurtosis, res.AccessMoments.Skewness)
	fmt.Printf("miss   kurtosis  %.3f   skewness %.3f\n", res.MissMoments.Kurtosis, res.MissMoments.Skewness)
	fmt.Printf("gini             %.3f   entropy %.3f   chi2 %.0f\n",
		stats.Gini(acc), stats.NormalizedEntropy(acc), stats.ChiSquareUniform(acc))
	fmt.Printf("set classes      FHS %.1f%%  FMS %.1f%%  LAS %.1f%%\n",
		res.Classification.FHSPercent(), res.Classification.FMSPercent(), res.Classification.LASPercent())
	fmt.Printf("sets <1/2 avg    %.2f%%   sets >=2x avg %.2f%%\n",
		100*stats.FractionBelow(acc, 0.5), 100*stats.FractionAtLeast(acc, 2))
	fmt.Println("\nper-set access histogram:")
	fmt.Print(stats.NewHistogram(acc, *buckets).Render(60))

	if *window > 0 {
		// Re-derive the per-window access-uniformity series using the
		// scheme's own mapping.
		sch, err := core.SchemeByName(*scheme)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uniformity:", err)
			os.Exit(1)
		}
		model, err := sch.Build(layout, sf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uniformity:", err)
			os.Exit(1)
		}
		// Diff PerSet snapshots at window boundaries: the delta is the
		// window's per-set access distribution.
		prev := model.PerSet()
		var series []float64
		flush := func() {
			cur := model.PerSet()
			delta := make([]uint64, len(cur.Accesses))
			for s := range delta {
				delta[s] = cur.Accesses[s] - prev.Accesses[s]
			}
			if m, err := stats.MomentsOfCounts(delta); err == nil {
				series = append(series, m.Kurtosis)
			}
			prev = cur
		}
		cur := trace.NewCursor(sf())
		replayed := 0
		for {
			a, err := cur.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					fmt.Fprintln(os.Stderr, "uniformity:", err)
					os.Exit(1)
				}
				break
			}
			model.Access(a)
			replayed++
			if replayed%*window == 0 {
				flush()
			}
		}
		_ = cur.Close()
		if replayed%*window != 0 {
			flush()
		}
		fmt.Printf("\nper-window access kurtosis (window = %d accesses):\n", *window)
		for i, k := range series {
			fmt.Printf("  window %3d: %10.2f\n", i, k)
		}
	}
}

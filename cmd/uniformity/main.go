// Command uniformity replays a stored trace (from cmd/tracegen) through a
// chosen scheme and reports the access-uniformity analysis of the paper's
// Section IV-C/D: per-set distribution shape, FHS/FMS/LAS classes, and an
// ASCII histogram.
//
// Usage:
//
//	tracegen -bench fft -o fft.trace
//	uniformity -trace fft.trace -scheme baseline
//	uniformity -trace fft.trace -scheme xor
package main

import (
	"flag"
	"fmt"
	"os"

	"cacheuniformity/internal/addr"
	"cacheuniformity/internal/core"
	"cacheuniformity/internal/stats"
	"cacheuniformity/internal/trace"
)

func main() {
	path := flag.String("trace", "", "trace file (binary or text format)")
	scheme := flag.String("scheme", "baseline", "cache scheme name")
	blockBytes := flag.Int("blockbytes", 32, "L1 block size in bytes")
	sets := flag.Int("sets", 1024, "L1 set count")
	buckets := flag.Int("buckets", 16, "histogram buckets")
	window := flag.Int("window", 0, "if > 0, also print the per-window kurtosis time series (phase view)")
	flag.Parse()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "uniformity: -trace is required")
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uniformity:", err)
		os.Exit(1)
	}
	defer f.Close()
	// Try the three formats in order: binary, compact, text.
	var tr trace.Trace
	var err2 error
	for i, reader := range []func() (trace.Trace, error){
		func() (trace.Trace, error) { return trace.ReadBinary(f) },
		func() (trace.Trace, error) { return trace.ReadCompact(f) },
		func() (trace.Trace, error) { return trace.ReadText(f) },
	} {
		if i > 0 {
			if _, serr := f.Seek(0, 0); serr != nil {
				fmt.Fprintln(os.Stderr, "uniformity:", serr)
				os.Exit(1)
			}
		}
		tr, err2 = reader()
		if err2 == nil {
			break
		}
	}
	if err2 != nil {
		fmt.Fprintln(os.Stderr, "uniformity:", err2)
		os.Exit(1)
	}

	layout, err := addr.NewLayout(*blockBytes, *sets, 32)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uniformity:", err)
		os.Exit(2)
	}
	cfg := core.Default()
	cfg.Layout = layout

	res, err := core.RunTrace(cfg, *scheme, *path, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uniformity:", err)
		os.Exit(1)
	}

	acc := res.PerSet.Accesses
	fmt.Printf("trace            %s (%d accesses)\n", *path, len(tr))
	fmt.Printf("scheme           %s\n", res.Scheme)
	fmt.Printf("miss rate        %.4f\n", res.MissRate)
	fmt.Printf("access kurtosis  %.3f   skewness %.3f\n", res.AccessMoments.Kurtosis, res.AccessMoments.Skewness)
	fmt.Printf("miss   kurtosis  %.3f   skewness %.3f\n", res.MissMoments.Kurtosis, res.MissMoments.Skewness)
	fmt.Printf("gini             %.3f   entropy %.3f   chi2 %.0f\n",
		stats.Gini(acc), stats.NormalizedEntropy(acc), stats.ChiSquareUniform(acc))
	fmt.Printf("set classes      FHS %.1f%%  FMS %.1f%%  LAS %.1f%%\n",
		res.Classification.FHSPercent(), res.Classification.FMSPercent(), res.Classification.LASPercent())
	fmt.Printf("sets <1/2 avg    %.2f%%   sets >=2x avg %.2f%%\n",
		100*stats.FractionBelow(acc, 0.5), 100*stats.FractionAtLeast(acc, 2))
	fmt.Println("\nper-set access histogram:")
	fmt.Print(stats.NewHistogram(acc, *buckets).Render(60))

	if *window > 0 {
		// Re-derive the per-window access-uniformity series using the
		// scheme's own mapping.
		sch, err := core.SchemeByName(*scheme)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uniformity:", err)
			os.Exit(1)
		}
		model, err := sch.Build(layout, tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uniformity:", err)
			os.Exit(1)
		}
		// Diff PerSet snapshots at window boundaries: the delta is the
		// window's per-set access distribution.
		prev := model.PerSet()
		var series []float64
		flush := func() {
			cur := model.PerSet()
			delta := make([]uint64, len(cur.Accesses))
			for s := range delta {
				delta[s] = cur.Accesses[s] - prev.Accesses[s]
			}
			if m, err := stats.MomentsOfCounts(delta); err == nil {
				series = append(series, m.Kurtosis)
			}
			prev = cur
		}
		for i, a := range tr {
			model.Access(a)
			if (i+1)%*window == 0 {
				flush()
			}
		}
		if len(tr)%*window != 0 {
			flush()
		}
		fmt.Printf("\nper-window access kurtosis (window = %d accesses):\n", *window)
		for i, k := range series {
			fmt.Printf("  window %3d: %10.2f\n", i, k)
		}
	}
}

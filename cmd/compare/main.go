// Command compare runs a set of schemes across a set of benchmarks and
// prints the miss-rate matrix plus per-benchmark reductions against a
// baseline — the free-form counterpart of cmd/experiments' fixed figures.
//
// Usage:
//
//	compare -schemes baseline,xor,column_associative -benches fft,sha
//	compare -suite mibench -schemes baseline,adaptive
//	compare -suite spec2006 -schemes baseline,xor -metric amat
//	compare -roster examples/rosters/adaptive.json
//
// A -roster file declares the whole sweep — schemes and benchmarks as
// registry declarations (catalog names or kind+params compositions, see
// examples/rosters/) — so new scenario families need a config file, not
// a rebuild.  The first declared scheme is the reduction baseline.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"cacheuniformity/internal/cli"
	"cacheuniformity/internal/core"
	"cacheuniformity/internal/registry"
	"cacheuniformity/internal/report"
	"cacheuniformity/internal/resultstore"
	"cacheuniformity/internal/stats"
	"cacheuniformity/internal/workload"
)

func main() {
	schemesFlag := flag.String("schemes", "baseline,xor,odd_multiplier,column_associative",
		"comma-separated scheme names (first is the reduction baseline)")
	benchesFlag := flag.String("benches", "", "comma-separated benchmark names")
	rosterFlag := flag.String("roster", "", "declarative roster file (JSON); overrides -schemes/-benches/-suite")
	suite := flag.String("suite", "", "benchmark suite: mibench or spec2006 (overrides -benches)")
	length := flag.Int("len", 300_000, "trace length per benchmark")
	seed := flag.Uint64("seed", 0, "workload seed (0 = paper default)")
	metric := flag.String("metric", "missrate", "metric: missrate, amat, kurtosis, skewness")
	parallel := flag.Int("parallel", 0, "max concurrent benchmark workers in the fan-out grid (0 = GOMAXPROCS); peak memory grows with this, not with -len")
	percell := flag.Bool("percell", false, "use the legacy per-cell grid engine (one generator pass per scheme×benchmark cell)")
	cacheDir := flag.String("cache", "", "result-store directory: reuse previously simulated cells and persist new ones (incremental regeneration)")
	csv := flag.Bool("csv", false, "emit CSV")
	compileTraces := flag.Bool("compile-traces", false, "compile each benchmark's access trace once and replay the cached artifact for every scheme (persisted under -cache when set)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at the end of the run")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none); cells finished before the deadline are still printed, unfinished ones show NaN")
	flag.Parse()

	ctx, cancel := cli.RunContext(*timeout)
	defer cancel()

	stopProfiles, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(2)
	}
	defer stopProfiles()

	var (
		roster        registry.Roster
		rosterSchemes []core.Scheme
		rosterBenches []workload.Spec
		schemes       []string
		benches       []string
	)
	if *rosterFlag != "" {
		var err error
		roster, rosterSchemes, rosterBenches, err = cli.LoadRoster(*rosterFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(2)
		}
		for _, s := range rosterSchemes {
			schemes = append(schemes, s.Name)
		}
		for _, b := range rosterBenches {
			benches = append(benches, b.Name)
		}
	} else {
		schemes = splitList(*schemesFlag)
		switch {
		case *suite != "":
			benches = workload.Names(workload.Suite(*suite))
			if len(benches) == 0 {
				fmt.Fprintf(os.Stderr, "compare: unknown suite %q\n", *suite)
				os.Exit(2)
			}
		case *benchesFlag != "":
			benches = splitList(*benchesFlag)
		default:
			benches = workload.MiBenchOrder
		}
	}
	if len(schemes) < 2 {
		fmt.Fprintln(os.Stderr, "compare: need at least a baseline and one scheme")
		os.Exit(2)
	}

	cfg := core.Default()
	cfg.TraceLength = *length
	cfg.Parallelism = *parallel
	cfg.PerCell = *percell
	if *seed != 0 {
		cfg.Seed = *seed
	}
	var store *resultstore.Store
	if *cacheDir != "" {
		var err error
		store, err = resultstore.Open(resultstore.Options{Dir: *cacheDir, CompileTraces: *compileTraces})
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(2)
		}
		cfg.Memo = store
		if *compileTraces {
			// Artifacts persist under -cache/traces and outlive the run.
			cfg.Traces = store
		}
	} else if *compileTraces {
		cfg.Traces = core.NewMemTraceCache(0)
	}

	// On cancellation (^C or -timeout) the grid still returns the partial
	// map: finished cells carry results, unreached ones the context error.
	var (
		grid    map[string]map[string]core.Result
		gridErr error
	)
	if *rosterFlag != "" {
		grid, gridErr = cli.RosterGrid(ctx, cfg, store, roster, rosterSchemes, rosterBenches)
	} else {
		grid, gridErr = core.Grid(ctx, cfg, schemes, benches)
	}
	if grid == nil {
		fmt.Fprintln(os.Stderr, "compare:", gridErr)
		os.Exit(1)
	}

	pick := func(r core.Result) float64 {
		switch *metric {
		case "missrate":
			return r.MissRate
		case "amat":
			return r.AMAT
		case "kurtosis":
			return r.MissMoments.Kurtosis
		case "skewness":
			return r.MissMoments.Skewness
		default:
			fmt.Fprintf(os.Stderr, "compare: unknown metric %q\n", *metric)
			os.Exit(2)
			return 0
		}
	}

	// Partial results are first-class: a failed or unreached cell prints as
	// NaN and its error goes to stderr, while every finished cell is
	// reported normally.
	failed := 0
	raw := report.NewTable(fmt.Sprintf("%s by scheme", *metric), "benchmark", schemes)
	red := report.NewTable(fmt.Sprintf("%%reduction in %s vs %s", *metric, schemes[0]), "benchmark", schemes[1:])
	for _, b := range benches {
		row := grid[b]
		vals := make([]float64, len(schemes))
		for i, s := range schemes {
			if row[s].Err != nil {
				fmt.Fprintf(os.Stderr, "compare: %s/%s: %v\n", b, s, row[s].Err)
				failed++
				vals[i] = math.NaN()
				continue
			}
			vals[i] = pick(row[s])
		}
		raw.MustAddRow(b, vals)
		reds := make([]float64, len(schemes)-1)
		for i := range schemes[1:] {
			reds[i] = stats.PercentReduction(vals[0], vals[i+1])
		}
		red.MustAddRow(b, reds)
	}
	red.AddAverageRow("Average")

	write := func(t *report.Table) {
		var err error
		if *csv {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(1)
		}
	}
	write(raw)
	fmt.Println()
	write(red)
	if gridErr != nil {
		fmt.Fprintln(os.Stderr, "compare: run stopped early:", gridErr)
		os.Exit(130)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "compare: %d cell(s) failed\n", failed)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

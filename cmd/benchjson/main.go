// Command benchjson converts `go test -bench` output into a JSON summary
// and optionally enforces allocation budgets, so benchmark regressions can
// gate CI without extra tooling.
//
// It reads the benchmark output on stdin, echoes it unchanged to stdout
// (keeping the human-readable log visible in CI), and writes the parsed
// summary to -o.  Budgets are expressed as -maxallocs Name=N, repeatable;
// the run fails if the named benchmark is missing or any of its samples
// exceeds N allocs/op.  Ratio gates are expressed as -minspeedup
// Slow/Fast=N: the run fails unless Slow's fastest repetition is at least
// N times slower than Fast's (e.g. a cold simulation vs a warm cache hit).
// Throughput floors are expressed as -minmetric Name:metric=F: the run
// fails unless the named benchmark reports the custom metric and its best
// repetition reaches at least F (e.g. accesses/s on the grid engine).
// Ceilings are the mirror image, -maxmetric Name:metric=C: the run fails
// unless the metric's best (smallest) repetition stays at or below C
// (e.g. a p99 latency budget on the cluster load generator).
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkGrid' -benchmem -count 3 . | \
//	    benchjson -o BENCH_grid.json -maxallocs BenchmarkGridFanout=200000 \
//	    -minmetric BenchmarkGridFanout:accesses/s=10000000
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Sample is one benchmark line: iteration count plus every value/unit pair
// go test printed (ns/op, B/op, allocs/op and any b.ReportMetric units).
type Sample struct {
	N       int                `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Bench aggregates the samples of one benchmark across -count repetitions.
type Bench struct {
	Name    string   `json:"name"`
	Samples []Sample `json:"samples"`
	// MinNsPerOp is the fastest repetition — the conventional headline
	// number, least disturbed by scheduling noise.
	MinNsPerOp float64 `json:"min_ns_per_op"`
}

// Report is the file written to -o.
type Report struct {
	Goos    string  `json:"goos,omitempty"`
	Goarch  string  `json:"goarch,omitempty"`
	Pkg     string  `json:"pkg,omitempty"`
	CPU     string  `json:"cpu,omitempty"`
	Benches []Bench `json:"benchmarks"`
}

type budget struct {
	name string
	max  float64
}

// speedup is one -minspeedup gate: MinNsPerOp(slow) must be at least
// ratio times MinNsPerOp(fast).
type speedup struct {
	slow, fast string
	ratio      float64
}

// minMetric is one -minmetric gate: the benchmark's best repetition of the
// named custom metric must reach the floor.
type minMetric struct {
	name   string
	metric string
	floor  float64
}

// maxMetric is one -maxmetric gate: the benchmark's best (smallest)
// repetition of the named custom metric must stay at or below the
// ceiling.
type maxMetric struct {
	name    string
	metric  string
	ceiling float64
}

func main() {
	out := flag.String("o", "", "write the JSON summary to this file (empty = stdout only)")
	var budgets []budget
	flag.Func("maxallocs", "allocation budget Name=N; fail if the benchmark is missing or exceeds N allocs/op (repeatable)",
		func(v string) error {
			name, limit, ok := strings.Cut(v, "=")
			if !ok {
				return fmt.Errorf("want Name=N, got %q", v)
			}
			max, err := strconv.ParseFloat(limit, 64)
			if err != nil {
				return fmt.Errorf("bad limit in %q: %v", v, err)
			}
			budgets = append(budgets, budget{name: name, max: max})
			return nil
		})
	var speedups []speedup
	flag.Func("minspeedup", "speedup gate Slow/Fast=N; fail unless Slow is at least N times slower than Fast by min ns/op (repeatable)",
		func(v string) error {
			pair, limit, ok := strings.Cut(v, "=")
			if !ok {
				return fmt.Errorf("want Slow/Fast=N, got %q", v)
			}
			slow, fast, ok := strings.Cut(pair, "/")
			if !ok || slow == "" || fast == "" {
				return fmt.Errorf("want Slow/Fast=N, got %q", v)
			}
			ratio, err := strconv.ParseFloat(limit, 64)
			if err != nil || ratio <= 0 {
				return fmt.Errorf("bad ratio in %q", v)
			}
			speedups = append(speedups, speedup{slow: slow, fast: fast, ratio: ratio})
			return nil
		})
	var floors []minMetric
	flag.Func("minmetric", "throughput floor Name:metric=F; fail unless the benchmark's best repetition of the custom metric reaches F (repeatable)",
		func(v string) error {
			target, limit, ok := strings.Cut(v, "=")
			if !ok {
				return fmt.Errorf("want Name:metric=F, got %q", v)
			}
			name, metric, ok := strings.Cut(target, ":")
			if !ok || name == "" || metric == "" {
				return fmt.Errorf("want Name:metric=F, got %q", v)
			}
			floor, err := strconv.ParseFloat(limit, 64)
			if err != nil {
				return fmt.Errorf("bad floor in %q: %v", v, err)
			}
			floors = append(floors, minMetric{name: name, metric: metric, floor: floor})
			return nil
		})
	var ceilings []maxMetric
	flag.Func("maxmetric", "ceiling Name:metric=C; fail unless the benchmark's best (smallest) repetition of the custom metric stays at or below C (repeatable)",
		func(v string) error {
			target, limit, ok := strings.Cut(v, "=")
			if !ok {
				return fmt.Errorf("want Name:metric=C, got %q", v)
			}
			name, metric, ok := strings.Cut(target, ":")
			if !ok || name == "" || metric == "" {
				return fmt.Errorf("want Name:metric=C, got %q", v)
			}
			ceiling, err := strconv.ParseFloat(limit, 64)
			if err != nil {
				return fmt.Errorf("bad ceiling in %q: %v", v, err)
			}
			ceilings = append(ceilings, maxMetric{name: name, metric: metric, ceiling: ceiling})
			return nil
		})
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	failed := false
	for _, b := range budgets {
		if err := check(rep, b); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			failed = true
		}
	}
	for _, s := range speedups {
		if err := checkSpeedup(rep, s); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			failed = true
		}
	}
	for _, m := range floors {
		if err := checkMinMetric(rep, m); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			failed = true
		}
	}
	for _, m := range ceilings {
		if err := checkMaxMetric(rep, m); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// parse consumes go test benchmark output, echoing every line to stdout.
func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	byName := map[string]*Bench{}
	var order []string // first-seen benchmark order
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			rep.Goos = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			rep.Goarch = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			rep.Pkg = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = v
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // PASS/FAIL summaries and other non-result lines
		}
		// -count repetitions share a name; the -N suffix (GOMAXPROCS) is
		// part of the printed name and kept as-is.
		s := Sample{N: n, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			if fields[i+1] == "ns/op" {
				s.NsPerOp = val
			} else {
				s.Metrics[fields[i+1]] = val
			}
		}
		b := byName[fields[0]]
		if b == nil {
			b = &Bench{Name: fields[0]}
			byName[fields[0]] = b
			order = append(order, fields[0])
		}
		b.Samples = append(b.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range order {
		b := byName[name]
		b.MinNsPerOp = b.Samples[0].NsPerOp
		for _, s := range b.Samples[1:] {
			if s.NsPerOp < b.MinNsPerOp {
				b.MinNsPerOp = s.NsPerOp
			}
		}
		rep.Benches = append(rep.Benches, *b)
	}
	return rep, nil
}

func check(rep *Report, b budget) error {
	for _, bench := range rep.Benches {
		if bench.Name != b.name && !strings.HasPrefix(bench.Name, b.name+"-") {
			continue
		}
		for _, s := range bench.Samples {
			if allocs, ok := s.Metrics["allocs/op"]; ok && allocs > b.max {
				return fmt.Errorf("%s: %.0f allocs/op exceeds budget %.0f", bench.Name, allocs, b.max)
			}
		}
		return nil
	}
	return fmt.Errorf("budget %s=%.0f: benchmark not found in input", b.name, b.max)
}

// findBench resolves a gate name, tolerating the printed -N GOMAXPROCS
// suffix like check does.
func findBench(rep *Report, name string) (Bench, error) {
	for _, bench := range rep.Benches {
		if bench.Name == name || strings.HasPrefix(bench.Name, name+"-") {
			return bench, nil
		}
	}
	return Bench{}, fmt.Errorf("benchmark %s not found in input", name)
}

func checkSpeedup(rep *Report, s speedup) error {
	slow, err := findBench(rep, s.slow)
	if err != nil {
		return fmt.Errorf("speedup %s/%s: %w", s.slow, s.fast, err)
	}
	fast, err := findBench(rep, s.fast)
	if err != nil {
		return fmt.Errorf("speedup %s/%s: %w", s.slow, s.fast, err)
	}
	if fast.MinNsPerOp <= 0 {
		return fmt.Errorf("speedup %s/%s: %s has no ns/op", s.slow, s.fast, s.fast)
	}
	got := slow.MinNsPerOp / fast.MinNsPerOp
	if got < s.ratio {
		return fmt.Errorf("speedup %s/%s = %.1fx, below the required %.0fx", s.slow, s.fast, got, s.ratio)
	}
	return nil
}

// checkMinMetric takes the best (largest) repetition, mirroring
// MinNsPerOp: the floor gates what the machine can do, not what the noisy
// repetitions averaged.
func checkMinMetric(rep *Report, m minMetric) error {
	bench, err := findBench(rep, m.name)
	if err != nil {
		return fmt.Errorf("minmetric %s:%s: %w", m.name, m.metric, err)
	}
	best, seen := 0.0, false
	for _, s := range bench.Samples {
		if v, ok := s.Metrics[m.metric]; ok {
			if !seen || v > best {
				best, seen = v, true
			}
		}
	}
	if !seen {
		return fmt.Errorf("minmetric %s:%s: benchmark reports no such metric", m.name, m.metric)
	}
	if best < m.floor {
		return fmt.Errorf("%s: %s = %.3g, below the required floor %.3g", bench.Name, m.metric, best, m.floor)
	}
	return nil
}

// checkMaxMetric takes the best (smallest) repetition, the mirror of
// checkMinMetric: the ceiling gates the machine's best case, so a single
// noisy repetition cannot fail the run.
func checkMaxMetric(rep *Report, m maxMetric) error {
	bench, err := findBench(rep, m.name)
	if err != nil {
		return fmt.Errorf("maxmetric %s:%s: %w", m.name, m.metric, err)
	}
	best, seen := 0.0, false
	for _, s := range bench.Samples {
		if v, ok := s.Metrics[m.metric]; ok {
			if !seen || v < best {
				best, seen = v, true
			}
		}
	}
	if !seen {
		return fmt.Errorf("maxmetric %s:%s: benchmark reports no such metric", m.name, m.metric)
	}
	if best > m.ceiling {
		return fmt.Errorf("%s: %s = %.3g, above the allowed ceiling %.3g", bench.Name, m.metric, best, m.ceiling)
	}
	return nil
}

// Command simlint is the multichecker for this repository's invariant
// analyzers (see internal/lint): run-to-run determinism (detrand),
// context flow (ctxflow), hot-path allocation discipline (hotalloc), the
// errors-not-panics constructor contract (nopanic), annotation hygiene
// (allowcheck), native re-creations of the standard shadow, nilness, and
// unusedwrite passes, and the CFG-based concurrency and service pack:
// lock release/ordering discipline (lockcheck), goroutine termination
// paths (goleak), no silent error discards (errflow), the HTTP
// one-status-per-path and 503-carries-Retry-After protocol (httpresp),
// Prometheus exposition hygiene (metriclint), and Closer release on all
// paths (closecheck).
//
// Usage:
//
//	simlint [-only a,b] [-list] [-json] [packages]
//
// Packages default to ./... relative to the working directory; any `go
// list` pattern works.  -json renders findings as a canonical JSON
// array ({file, line, col, analyzer, message}) — byte-stable for
// identical input, "[]" when clean — for dashboards and CI annotation.
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cacheuniformity/internal/lint"
	"cacheuniformity/internal/lint/analysis"
	"cacheuniformity/internal/lint/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "print the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a canonical JSON array instead of compiler-style lines")
	flag.Parse()

	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Module(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	findings, err := lint.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	if *jsonOut {
		data, err := lint.FindingsJSON(findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		fmt.Println(string(data))
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "simlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	return 0
}
